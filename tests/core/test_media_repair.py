"""The scrub/repair ladder: retry, local rebuild, replica rebuild, degrade."""

import pytest

from repro.core.api import pm_restore
from repro.core.pmoctree import SLOT_PREV
from repro.core.recovery import scrub
from repro.core.replication import ReplicaStore, ship_delta
from repro.errors import MediaUnrepairableError
from repro.nvbm.device import LINES_PER_RECORD, MediaFaultModel
from repro.nvbm.pointers import index_of

from .conftest import PMRig


def _signature(tree):
    return {loc: tuple(tree.get_payload(loc)) for loc in tree.leaves()}


def _persisted_rig(seed=0):
    """A rig with a refined, payload-stamped, persisted tree."""
    rig = PMRig(dram_octants=2048, nvbm_octants=1 << 15)
    tree = rig.tree
    for _ in range(2):
        for leaf in list(tree.leaves()):
            tree.refine(leaf)
    for i, leaf in enumerate(sorted(tree.leaves())):
        tree.set_payload(leaf, (float(seed), float(i), 1.0, 2.0))
    tree.persist(transform=False)
    return rig


def _published(rig):
    root = rig.nvbm.roots.get(SLOT_PREV)
    return root, sorted(rig.tree.reachable_from(root))


def _attach(rig, **kwargs):
    model = MediaFaultModel(seed=13, **kwargs)
    rig.nvbm.attach_fault_model(model)
    return model


def _gline(handle, line=0):
    return index_of(handle) * LINES_PER_RECORD + line


# ------------------------------------------------------------------- rung 1


def test_transient_upsets_clear_on_retry():
    rig = _persisted_rig()
    before = _signature(rig.tree)
    model = _attach(rig, transient_rate=0.25)
    report = scrub(rig.tree)
    assert report.ok
    assert report.repaired_retry > 0       # the bounded re-read rung fired
    assert report.relocated == 0           # nothing was actually damaged
    model.transient_rate = 0.0             # quiesce before the byte compare
    assert _signature(rig.tree) == before


# ------------------------------------------------------------------- rung 3


def test_rot_rebuilt_from_replica_frees_slot():
    rig = _persisted_rig()
    before = _signature(rig.tree)
    replica = ReplicaStore()
    ship_delta(rig.tree, replica)
    root, _published_handles = _published(rig)
    model = _attach(rig)
    model.plant_rot(_gline(root))          # internal: local rung cannot help
    report = scrub(rig.tree, replica=replica)
    assert report.ok
    assert report.detected == {"rot": 1}
    assert report.repaired_replica == 1
    assert report.relocated == 1
    assert report.retired_lines == 0       # rot frees; it does not retire
    idx = index_of(root)
    assert not rig.nvbm.allocator.is_retired(idx)
    assert idx not in rig.nvbm._backing    # slot genuinely reclaimed
    new_root, published = _published(rig)
    assert new_root != root
    assert root not in published
    assert _signature(rig.tree) == before
    rig.tree.check_invariants()


def test_stuck_line_retires_slot():
    rig = _persisted_rig()
    replica = ReplicaStore()
    ship_delta(rig.tree, replica)
    root, published = _published(rig)
    victim = published[len(published) // 2]
    model = _attach(rig)
    model.plant_stuck(_gline(victim))
    report = scrub(rig.tree, replica=replica)
    assert report.ok
    assert report.detected == {"stuck": 1}
    assert report.relocated == 1
    assert report.retired_lines == LINES_PER_RECORD
    assert rig.nvbm.allocator.is_retired(index_of(victim))
    _root, still_published = _published(rig)
    assert victim not in still_published
    rig.tree.check_invariants()


def test_repair_survives_crash_and_restore():
    """The republished tree is a real persist: power loss right after the
    repair must land restore on the same payloads."""
    rig = _persisted_rig()
    before = _signature(rig.tree)
    replica = ReplicaStore()
    ship_delta(rig.tree, replica)
    root, _ = _published(rig)
    model = _attach(rig)
    model.plant_stuck(_gline(root))
    assert scrub(rig.tree, replica=replica).ok
    rig.crash(seed=5)
    restored = rig.restore()
    assert _signature(restored) == before
    restored.check_invariants()


# ----------------------------------------------------------------- degrade


def test_unrepairable_without_replica_degrades_not_corrupts():
    rig = _persisted_rig()
    root, _ = _published(rig)
    model = _attach(rig)
    model.plant_rot(_gline(root))          # no replica, internal record
    report = scrub(rig.tree)
    assert not report.ok
    assert len(report.unrepaired) == 1
    assert report.relocated == 0


def test_restore_raises_unrepairable_with_lost_locs():
    rig = _persisted_rig()
    root, _ = _published(rig)
    model = _attach(rig)
    model.plant_rot(_gline(root))
    rig.crash(seed=2)
    with pytest.raises(MediaUnrepairableError) as ei:
        pm_restore(rig.dram, rig.nvbm, dim=2, config=rig.config,
                   injector=rig.injector)
    assert ei.value.lost_locs


# ----------------------------------------------- clean scrub is read-only


def test_scrub_on_clean_tree_is_pure_read():
    rig = _persisted_rig()
    before = _signature(rig.tree)
    stats = rig.nvbm.device.stats
    writes0, bw0, reads0 = stats.writes, stats.bytes_written, stats.reads
    t0 = rig.clock.now_ns
    report = scrub(rig.tree)
    assert report.ok and report.detected_total == 0
    assert report.scanned == len(list(rig.tree.reachable_from(
        rig.nvbm.roots.get(SLOT_PREV))))
    assert stats.writes == writes0             # no payload byte moved
    assert stats.bytes_written == bw0
    assert stats.reads > reads0                # only the read clock advanced
    assert rig.clock.now_ns > t0
    assert _signature(rig.tree) == before
    rig.tree.check_invariants()
