"""Mark-and-sweep GC behaviour (§3.2)."""

import pytest

from repro.errors import GCDisabledError
from repro.octree import morton


def _two_level_persisted(rig):
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)
    return t


def test_gc_on_clean_tree_frees_nothing(rig):
    t = _two_level_persisted(rig)
    res = t.gc()
    assert res.swept == 0
    assert res.marked == rig.nvbm.used


def test_gc_reclaims_superseded_cow_originals(rig):
    t = _two_level_persisted(rig)
    t.gc()
    leaf = morton.loc_from_coords(2, (1, 1), 2)
    t.set_payload(leaf, (5.0, 0, 0, 0))  # COWs 3 records
    used_mid = rig.nvbm.used
    t.persist(transform=False)  # supersedes the 3 originals
    res = t.gc()
    assert res.swept == 3
    assert rig.nvbm.used == used_mid - 3
    t.check_invariants()


def test_gc_does_not_touch_live_versions(rig):
    t = _two_level_persisted(rig)
    leaf = morton.loc_from_coords(2, (0, 1), 2)
    t.set_payload(leaf, (5.0, 0, 0, 0))
    # mid-step: both V_{i-1} (old records) and V_i (copies) must survive
    prev = t.reachable_from(rig.nvbm.roots.get("V_prev"))
    curr = set(t._index.values())
    t.gc()
    for h in prev | curr:
        assert rig.nvbm.contains(h)


def test_gc_reclaims_coarsened_children_after_persist(rig):
    t = _two_level_persisted(rig)
    t.gc()
    parent = morton.loc_from_coords(1, (1, 0), 2)
    t.coarsen(parent)
    t.persist(transform=False)
    res = t.gc()
    # 4 children + COW originals of the parent path become garbage
    assert res.swept >= 4
    t.check_invariants()


def test_gc_refused_during_merge(rig):
    t = _two_level_persisted(rig)
    t.merging = True
    with pytest.raises(GCDisabledError):
        t.gc()
    t.merging = False
    t.gc()


def test_gc_triggered_by_nvbm_pressure():
    """persist() runs GC on demand when free NVBM drops below threshold."""
    from tests.core.conftest import PMRig

    rig = PMRig(nvbm_octants=96, threshold_nvbm=0.6)
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)  # 21 records
    # churn payloads to pile up superseded records past the 60%-free line
    for step in range(4):
        for leaf in sorted(t.leaves())[:6]:
            t.set_payload(leaf, (float(step), 0, 0, 0))
        t.persist(transform=False)
    assert t.stats.gc_runs >= 1
    t.check_invariants()


def test_gc_keeps_dram_origins(rig):
    """Origins of C0 octants are GC roots (needed for sharing at merge)."""
    from repro.core.transform import detect_and_transform

    t = _two_level_persisted(rig)
    t.register_feature(lambda loc, p: True)
    detect_and_transform(t)
    assert t._origin
    origin_handles = set(t._origin.values())
    t.gc()
    for h in origin_handles:
        assert rig.nvbm.contains(h)
    t.check_invariants()


def test_gc_sweeps_torn_crash_garbage(rig):
    t = _two_level_persisted(rig)
    t.gc()
    baseline = rig.nvbm.used
    for leaf in sorted(t.leaves())[:5]:
        t.refine(leaf)  # 5*4 children + COW copies, never persisted
    rig.crash()
    t = rig.restore()
    res = t.gc()
    assert res.swept >= 20
    assert rig.nvbm.used == baseline
