"""Property: a crash at ANY site, at ANY hit count, is always recoverable.

The parametrised recovery tests pick specific sites; this hypothesis test
samples the (site, hit) space randomly, including hits that never fire.
Whatever happens, `pm_restore` must reproduce the last persisted state.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import SimulatedCrash
from repro.octree import morton
from tests.core.conftest import PMRig

SITES = [
    "cow.after_copy",
    "merge.octant",
    "merge.subtree_done",
    "evict.begin",
    "load.octant",
    "transform.mid",
    "persist.begin",
    "persist.before_flush",
    "persist.before_root_swap",
    "persist.after_root_swap",
]


def _signature(tree):
    return {loc: tree.get_payload(loc) for loc in tree.leaves()}


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    site=st.sampled_from(SITES),
    hit=st.integers(1, 30),
    seed=st.integers(0, 100),
    use_transform=st.booleans(),
)
def test_any_crash_is_recoverable(site, hit, seed, use_transform):
    rig = PMRig(dram_octants=256, nvbm_octants=1 << 14)
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    if use_transform:
        t.register_feature(lambda loc, p: morton.level_of(loc, 2) >= 1)
    t.persist(transform=use_transform)
    persisted_sig = _signature(t)

    rig.injector.reset_hits()
    rig.injector.arm(site, at_hit=hit)
    committed = False
    try:
        # a busy step touching DRAM, NVBM, COW, eviction and persist paths
        for i, leaf in enumerate(sorted(t.leaves())[:6]):
            t.set_payload(leaf, (float(i), 0, 0, 0))
        t.refine(sorted(t.leaves())[seed % t.num_leaves()])
        t.persist(transform=use_transform)
        committed = True
    except SimulatedCrash as crash:
        committed = crash.point == "persist.after_root_swap"
        if committed:
            new_sig = None  # recovered tree is the new version; recompute

    rig.crash(seed=seed)
    t2 = rig.restore()
    if not committed:
        assert _signature(t2) == persisted_sig
    else:
        # the root swap happened: recovery sees the new version; it must at
        # least be self-consistent and contain the refined leaf's region
        t2.check_invariants()
    t2.gc()
    t2.check_invariants()
