"""Acknowledged replication protocol: seq/ack/retry/backoff/idempotency."""

import pytest

from repro.config import GEMINI_SPEC, OCTANT_RECORD_SIZE
from repro.core.replication import (
    FaultyTransport,
    PerfectTransport,
    ReplicaSession,
    ReplicaStore,
    RetryPolicy,
    restore_from_replica,
    ship_delta,
)
from repro.errors import RecoveryError, ReplicationTimeoutError
from repro.nvbm.clock import Category
from repro.parallel.faults import Delivery, FaultyNetwork, LinkFaults, \
    NetworkFaultPlan
from repro.parallel.network import Network


def _prepare(rig, rounds=2):
    t = rig.tree
    for _ in range(rounds):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)
    return t


def _sig(tree):
    return {loc: tuple(tree.get_payload(loc)) for loc in tree.leaves()}


class _ScriptedTransport:
    """Transport whose delivery fates are scripted per message kind."""

    def __init__(self, data_fates=None, ack_fates=None):
        self.data_fates = list(data_fates or [])
        self.ack_fates = list(ack_fates or [])
        self.data_sent = 0
        self.acks_sent = 0

    def _next(self, fates):
        return fates.pop(0) if fates else Delivery(True, 1, 0.0)

    def send_data(self, nbytes):
        self.data_sent += 1
        return self._next(self.data_fates)

    def send_ack(self):
        self.acks_sent += 1
        return self._next(self.ack_fates)


class _CountingStore(ReplicaStore):
    def __init__(self):
        super().__init__()
        self.applies = 0

    def apply_delta(self, *a, **kw):
        status = super().apply_delta(*a, **kw)
        if status == "applied":
            self.applies += 1
        return status


# ------------------------------------------------------------- happy path


def test_ship_sequences_and_protects(rig):
    t = _prepare(rig)
    s = ReplicaSession(t)
    r1 = s.ship()
    assert (r1.seq, r1.attempts, r1.resynced) == (1, 1, False)
    assert s.protected
    t.set_payload(sorted(t.leaves())[0], (1.0, 0, 0, 0))
    t.persist(transform=False)
    assert not s.protected          # new persist not yet shipped
    r2 = s.ship()
    assert r2.seq == 2 and s.protected
    assert r2.bytes_shipped < r1.bytes_shipped   # delta, not full tree
    assert s.replica.applied_seq == 2


def test_ship_without_persist_rejected(rig):
    with pytest.raises(RecoveryError):
        ReplicaSession(rig.tree).ship()


def test_reship_same_version_is_a_noop(rig):
    t = _prepare(rig)
    s = ReplicaSession(t, replica=_CountingStore())
    s.ship()
    report = s.ship()  # peer already holds this version: nothing crosses
    assert report.attempts == 0 and report.bytes_shipped == 0
    assert s.replica.applies == 1
    assert s.protected


# -------------------------------------------------------- loss and retries


def test_lost_delta_retried_with_backoff_on_sim_clock(rig):
    t = _prepare(rig)
    policy = RetryPolicy(ack_timeout_ns=1000.0, base_backoff_ns=100.0,
                         backoff_factor=2.0, max_retries=4)
    transport = _ScriptedTransport(data_fates=[
        Delivery(False, 0, 50.0, "drop"),
        Delivery(False, 0, 50.0, "drop"),
    ])
    before = rig.clock.category_ns(Category.COMM)
    s = ReplicaSession(t, transport=transport, policy=policy)
    report = s.ship()
    assert report.attempts == 3
    # waits: (1000+100) after attempt 1, (1000+200) after attempt 2
    assert report.wait_ns == pytest.approx(2300.0)
    charged = rig.clock.category_ns(Category.COMM) - before
    # waits + the wire cost of the two dropped sends (third send is free)
    assert charged == pytest.approx(2300.0 + 2 * 50.0)
    assert s.stats.deltas_lost == 2 and s.stats.retries == 2


def test_lost_ack_retransmit_is_idempotent(rig):
    t = _prepare(rig)
    store = _CountingStore()
    transport = _ScriptedTransport(ack_fates=[Delivery(False, 0, 0.0)])
    s = ReplicaSession(t, replica=store, transport=transport,
                       policy=RetryPolicy(max_retries=3))
    report = s.ship()
    assert report.attempts == 2
    assert store.applies == 1       # retransmit re-acked, NOT re-applied
    assert s.stats.acks_lost == 1
    assert s.protected


def test_network_duplicate_applied_once(rig):
    t = _prepare(rig)
    store = _CountingStore()
    transport = _ScriptedTransport(data_fates=[Delivery(True, 2, 0.0)])
    s = ReplicaSession(t, replica=store, transport=transport)
    report = s.ship()
    assert store.applies == 1
    assert report.duplicates_ignored == 1


def test_retry_budget_exhausted_raises_typed_error(rig):
    t = _prepare(rig)

    class _BlackHole:
        def send_data(self, nbytes):
            return Delivery(False, 0, 10.0, "drop")

        def send_ack(self):  # pragma: no cover - never reached
            return Delivery(True, 1, 0.0)

    policy = RetryPolicy(max_retries=3)
    s = ReplicaSession(t, transport=_BlackHole(), policy=policy)
    with pytest.raises(ReplicationTimeoutError) as exc:
        s.ship()
    assert exc.value.attempts == 4  # initial try + max_retries
    assert s.stats.deltas_lost == 4


def test_break_acks_never_converges(rig):
    t = _prepare(rig)
    s = ReplicaSession(t, policy=RetryPolicy(max_retries=2),
                       break_acks=True)
    with pytest.raises(ReplicationTimeoutError):
        s.ship()
    assert not s.protected


# ------------------------------------------------------------- divergence


def test_fresh_session_against_populated_peer_resyncs(rig):
    t = _prepare(rig)
    s1 = ReplicaSession(t)
    s1.ship()
    t.set_payload(sorted(t.leaves())[0], (2.0, 0, 0, 0))
    t.persist(transform=False)
    s1.ship()
    # host process dies: session state (next_seq, peer_root) is lost; a
    # fresh session knows nothing and must fall back to a full resync
    s2 = ReplicaSession(t, replica=s1.replica)
    t.set_payload(sorted(t.leaves())[1], (3.0, 0, 0, 0))
    t.persist(transform=False)
    report = s2.ship()
    assert report.resynced
    assert s2.stats.resyncs == 1
    assert s2.protected
    # the resynced replica is a faithful recovery source
    from tests.core.test_replication import _fresh_arenas

    dram2, nvbm2 = _fresh_arenas()
    t2 = restore_from_replica(s1.replica, dram2, nvbm2, dim=2)
    assert _sig(t2) == _sig(t)


# ------------------------------------------- lossy end-to-end convergence


def test_converges_over_20pct_lossy_network(rig):
    """The acceptance scenario: 20% drop on both link directions."""
    t = _prepare(rig)
    plan = NetworkFaultPlan(seed=11, default=LinkFaults(drop=0.20))
    net = FaultyNetwork(Network(GEMINI_SPEC), plan)
    transport = FaultyTransport(net, host_rank=0, peer_rank=1,
                                clock=rig.clock)
    s = ReplicaSession(t, transport=transport, clock=rig.clock)
    comm_before = rig.clock.category_ns(Category.COMM)
    for step in range(8):
        t.set_payload(sorted(t.leaves())[step % 4], (float(step), 0, 0, 0))
        t.persist(transform=False)
        report = s.ship()
        assert s.protected, f"step {step} did not converge"
        assert report.seq == step + 1
    # the lossy link actually lost something, and every retry's
    # timeout+backoff is visible in the simulated clock
    assert s.stats.deltas_lost + s.stats.acks_lost > 0
    assert s.stats.wait_ns > 0
    assert rig.clock.category_ns(Category.COMM) - comm_before >= \
        s.stats.wait_ns
    # converged replica == host's persisted version
    from tests.core.test_replication import _fresh_arenas

    dram2, nvbm2 = _fresh_arenas()
    t2 = restore_from_replica(s.replica, dram2, nvbm2, dim=2)
    assert _sig(t2) == _sig(t)


# ------------------------------------------------- satellite: delta reuse


def test_reachable_computed_exactly_once_per_ship(rig):
    """ship_delta must reuse compute_delta's reachable set, not re-walk."""
    t = _prepare(rig)
    calls = []
    orig = t.reachable_from
    t.reachable_from = lambda root: (calls.append(root) or orig(root))

    replica = ReplicaStore()
    shipped = ship_delta(t, replica)
    assert len(calls) == 1
    assert shipped == len(replica.records) * OCTANT_RECORD_SIZE

    calls.clear()
    session = ReplicaSession(t, replica=ReplicaStore())
    session.ship()
    assert len(calls) == 1
