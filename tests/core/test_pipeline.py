"""The epoch-overlap test battery for the asynchronous persist pipeline.

Three families of guarantees:

* **Differential** — the pipeline changes *when* durability work happens,
  never *what* is durable: pipelined and synchronous runs recover to
  bit-identical state, at every in-flight window size and rank count.
* **Recovery landing** — a crash mid-drain restores exactly epoch *i* or
  epoch *i−1* (the root-slot publish is the commit point), never a blend.
* **Properties** — under seeded random interleavings the in-flight window
  never exceeds its bound, and every backpressure stall is charged to the
  simulated clock under the ``persist.drain`` phase.
"""

import random

import pytest

from repro.analysis.sweep import _Rig, _signature
from repro.config import DRAM_SPEC, NVBM_SPEC, PMOctreeConfig, SolverConfig
from repro.core.api import pm_create
from repro.nvbm import sites
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.obs import Observability
from repro.solver.simulation import DropletSimulation


def _droplet_rig(max_inflight, obs=None, steps=5):
    """Run the droplet workload with a persist+gc point every step."""
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 16)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 20)
    cfg = PMOctreeConfig(dram_capacity_octants=96,
                         max_inflight_epochs=max_inflight)
    tree = pm_create(dram, nvbm, dim=2, config=cfg)
    if obs is not None:
        if obs.metrics.clock is None:
            obs.bind_clock(clock)
        nvbm.attach_obs(obs)
        tree.attach_obs(obs)
    solver = SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)

    def persistence(sim_):
        sim_.tree.persist()
        sim_.tree.gc()

    sim = DropletSimulation(tree, solver, clock=clock,
                            persistence=persistence)
    if obs is not None:
        sim.obs = obs
    sim.run(steps)
    return clock, dram, nvbm, tree


def _recovered_signature(dram, nvbm, tree, seed=11):
    """Crash, restore, and return the structural signature."""
    from repro.core.api import pm_restore
    import numpy as np

    config = tree.config
    dram.crash()
    nvbm.crash(np.random.default_rng(seed))
    restored = pm_restore(dram, nvbm, dim=2, config=config)
    return _signature(restored)


# ----------------------------------------------------------- differential

@pytest.mark.parametrize("max_inflight", [1, 2, 3])
def test_pipelined_recovers_bit_identical_to_sync(max_inflight):
    """Same workload, same persist points: the synchronous and pipelined
    runs must crash-recover to exactly the same state."""
    clock_s, dram_s, nvbm_s, tree_s = _droplet_rig(max_inflight=0)
    sig_sync = _recovered_signature(dram_s, nvbm_s, tree_s)

    clock_p, dram_p, nvbm_p, tree_p = _droplet_rig(max_inflight=max_inflight)
    tree_p.drain_persists()           # the barrier publishes the last epoch
    sig_pipe = _recovered_signature(dram_p, nvbm_p, tree_p)

    assert sig_sync, "workload must persist a non-trivial tree"
    assert sig_pipe == sig_sync
    # and the overlap must actually have paid off on the simulated clock
    assert clock_p.now_ns <= clock_s.now_ns


@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_parallel_differential_sync_vs_pipelined(nranks):
    """run_parallel with the pipeline on and off computes the identical
    state trajectory at every rank count — only the clock may differ, and
    only downward."""
    from repro.parallel.runtime import Backend, RunConfig, run_parallel

    def cfg(inflight):
        return RunConfig(backend=Backend.PM_OCTREE, nranks=nranks,
                         target_elements=1e4, steps=4,
                         max_inflight_epochs=inflight)

    sync = run_parallel(cfg(0))
    pipe = run_parallel(cfg(1))
    trajectory = [(r.leaves, r.octants, r.refined, r.coarsened, r.droplets)
                  for r in sync.step_reports]
    assert trajectory == [
        (r.leaves, r.octants, r.refined, r.coarsened, r.droplets)
        for r in pipe.step_reports]
    assert pipe.persists == sync.persists
    assert pipe.actual_octants == sync.actual_octants
    assert pipe.makespan_s <= sync.makespan_s


# ------------------------------------------------------- recovery landing

#: which epoch a crash at each pipeline site must restore (max_inflight=1):
#: before the publish executes the slot still names epoch i-1; the
#: enqueue.mid site is reached only after backpressure published epoch i.
_EXPECTED_LANDING = {
    sites.EPOCH_OVERLAP_NEXT_STEP: "epoch-i-1",
    sites.EPOCH_DRAIN_MID: "epoch-i-1",
    sites.EPOCH_COMMIT_PRE_PUBLISH: "epoch-i-1",
    sites.EPOCH_ENQUEUE_MID: "epoch-i",
}


@pytest.mark.parametrize("site", sorted(_EXPECTED_LANDING))
def test_mid_drain_crash_lands_on_a_whole_epoch(site):
    """Recovery after a tear at each pipeline site restores bit-for-bit
    epoch i or epoch i-1 — and deterministically the one the commit-point
    argument predicts — never a blend of the two."""
    from repro.analysis.sweep import sweep_site

    out = sweep_site(site, max_steps=8)
    assert out.fired, f"{site} never fired"
    assert out.recovered, f"{site}: {out.detail}"
    assert out.matched == _EXPECTED_LANDING[site]


# --------------------------------------------------------------- properties

@pytest.mark.parametrize("seed", [3, 17, 404])
@pytest.mark.parametrize("bound", [1, 2, 3])
def test_inflight_window_never_exceeds_bound(seed, bound):
    """Random refine/coarsen/payload/persist interleavings: the queue depth
    stays within ``max_inflight_epochs`` at every point in time."""
    rig = _Rig(max_inflight=bound)
    tree = rig.tree
    rng = random.Random(seed)
    for leaf in list(tree.leaves()):
        tree.refine(leaf)
    for _ in range(40):
        op = rng.choice(["refine", "coarsen", "payload", "persist"])
        leaves = sorted(tree.leaves())
        if op == "refine" and len(leaves) < 64:
            tree.refine(rng.choice(leaves))
        elif op == "payload":
            tree.set_payload(rng.choice(leaves),
                             (rng.random(), 1.0, 0.0, 0.0))
        elif op == "coarsen":
            parents = sorted({loc >> tree.dim for loc in leaves if loc > 1})
            if parents:
                try:
                    tree.coarsen(rng.choice(parents))
                except Exception:
                    pass  # non-coarsenable pick; the property is the bound
        else:
            tree.persist(transform=False)
        assert tree._pipeline.inflight <= bound
    assert 0 < tree._pipeline.stats.max_inflight_seen <= bound
    tree.drain_persists()
    assert tree._pipeline.inflight == 0


def test_backpressure_stall_is_charged_to_the_sim_clock():
    """A full window stalls the *simulated* clock, under the nested
    ``persist.drain`` phase — stalls are real time, not bookkeeping."""
    rig = _Rig(max_inflight=1)
    tree = rig.tree
    for leaf in list(tree.leaves()):
        tree.refine(leaf)
    for i, leaf in enumerate(sorted(tree.leaves())[:4]):
        tree.set_payload(leaf, (float(i), 1.0, 0.0, 0.0))
    tree.persist(transform=False)         # epoch A in flight
    before = rig.clock.now_ns
    tree.set_payload(sorted(tree.leaves())[0], (9.0, 1.0, 0.0, 0.0))
    tree.persist(transform=False)         # must stall until A drains
    stats = tree._pipeline.stats
    assert stats.backpressure_waits >= 1
    assert stats.stall_ns > 0
    assert rig.clock.now_ns >= before + stats.stall_ns
    assert rig.clock.phase_ns("persist.drain") >= stats.stall_ns
    tree.drain_persists()


def test_overlap_fraction_gauge_and_phase_split():
    """The observability mirror of the pipeline: the droplet run reports
    its persist time under ``persist.enqueue`` (plus ``persist.drain`` for
    stalls), never under a bare ``persist``, and the overlap gauge matches
    the pipeline's own accounting."""
    obs = Observability()
    clock, dram, nvbm, tree = _droplet_rig(max_inflight=1, obs=obs)
    tree.drain_persists()
    assert "persist" not in clock.by_phase
    assert clock.phase_ns("persist.enqueue") > 0
    pipe = tree._pipeline
    assert obs.metrics.gauge("pipeline.overlap_fraction").value \
        == pipe.overlap_fraction()
    assert obs.metrics.gauge("pipeline.stall_ns").value == pipe.stats.stall_ns
    # every drained epoch produced one pm.persist.drain span
    drain_spans = [s for s in obs.tracer.spans
                   if s.name == "pm.persist.drain"]
    assert len(drain_spans) == pipe.stats.drained > 0
    assert pipe.stats.drained == pipe.stats.enqueued


def test_sync_mode_has_no_pipeline():
    clock, dram, nvbm, tree = _droplet_rig(max_inflight=0, steps=2)
    assert tree._pipeline is None
    tree.drain_persists()                 # a no-op barrier, not an error
