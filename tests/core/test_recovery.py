"""Crash injection + recovery: the consistency claims, actually exercised.

The paper's argument (§3): because updates are COW and the persist point is
one atomic root-slot store, *no* fence ordering is needed during a step —
whatever a crash tears, the previous version stays consistent.  These tests
crash at every declared site and verify pm_restore always reproduces the
last persisted tree exactly.
"""

import numpy as np
import pytest

from repro.errors import RecoveryError, SimulatedCrash
from repro.octree import morton
from repro.octree.store import validate_tree


def _tree_signature(tree):
    """Full logical content: {leaf loc: payload} plus octant count."""
    return (
        {loc: tree.get_payload(loc) for loc in tree.leaves()},
        tree.num_octants(),
    )


def _build_and_persist(rig, salt=0.0):
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    for i, leaf in enumerate(sorted(t.leaves())):
        t.set_payload(leaf, (salt + i, 0.0, 0.0, 0.0))
    t.persist(transform=False)
    return _tree_signature(t)


def test_restore_without_persist_fails(rig):
    rig.crash()
    with pytest.raises(RecoveryError):
        rig.restore()


def test_restore_after_clean_persist(rig):
    sig = _build_and_persist(rig)
    rig.crash()
    t = rig.restore()
    assert _tree_signature(t) == sig
    validate_tree(t)
    t.check_invariants()


def test_unpersisted_step_is_rolled_back(rig):
    sig = _build_and_persist(rig)
    t = rig.tree
    # a whole step's worth of un-persisted work
    leaf = sorted(t.leaves())[0]
    t.refine(leaf)
    t.set_payload(sorted(t.leaves())[-1], (99.0, 0, 0, 0))
    rig.crash()
    t = rig.restore()
    assert _tree_signature(t) == sig  # back to the persisted state


@pytest.mark.parametrize("site,hit", [
    ("cow.after_copy", 1),
    ("cow.after_copy", 2),
    ("persist.begin", 1),
    ("persist.before_flush", 1),
    ("persist.before_root_swap", 1),
])
def test_crash_before_commit_point_preserves_old_version(rig, site, hit):
    sig = _build_and_persist(rig)
    t = rig.tree
    rig.injector.reset_hits()  # count hits from this step on
    rig.injector.arm(site, at_hit=hit)
    with pytest.raises(SimulatedCrash):
        # a busy step: COW updates and refinement in NVBM, then persist
        for i, leaf in enumerate(sorted(t.leaves())):
            t.set_payload(leaf, (100.0 + i, 0, 0, 0))
        t.refine(sorted(t.leaves())[0])
        t.persist(transform=False)
    rig.crash(seed=hit)
    t = rig.restore()
    assert _tree_signature(t) == sig
    t.check_invariants()


@pytest.mark.parametrize("site,hit", [
    ("merge.octant", 1),
    ("merge.octant", 3),
    ("merge.subtree_done", 1),
])
def test_crash_mid_merge_preserves_old_version(rig, site, hit):
    """Crashing while C0 merges out to NVBM must not damage V_{i-1}."""
    from repro.core.transform import detect_and_transform

    sig = _build_and_persist(rig)
    t = rig.tree
    # pull the (whole, small) tree into DRAM so the next persist has a real
    # C0 merge to crash in
    t.register_feature(lambda loc, payload: True)
    detect_and_transform(t)
    assert t.c0_size() > 0
    rig.injector.reset_hits()
    rig.injector.arm(site, at_hit=hit)
    with pytest.raises(SimulatedCrash):
        for i, leaf in enumerate(sorted(t.leaves())):
            t.set_payload(leaf, (100.0 + i, 0, 0, 0))
        t.persist(transform=False)
    rig.crash(seed=hit)
    t = rig.restore()
    assert _tree_signature(t) == sig
    t.check_invariants()


def test_crash_after_root_swap_recovers_new_version(rig):
    _build_and_persist(rig)
    t = rig.tree
    for i, leaf in enumerate(sorted(t.leaves())):
        t.set_payload(leaf, (200.0 + i, 0, 0, 0))
    new_sig = _tree_signature(t)
    rig.injector.reset_hits()
    rig.injector.arm("persist.after_root_swap")
    with pytest.raises(SimulatedCrash):
        t.persist(transform=False)
    rig.crash()
    t = rig.restore()
    # commit point passed: recovery must see the NEW version
    assert _tree_signature(t) == new_sig
    t.check_invariants()


def test_crash_mid_first_persist_is_unrecoverable_by_design(rig):
    """Before the first persist completes there is nothing durable."""
    t = rig.tree
    t.refine(morton.ROOT_LOC)
    rig.injector.arm("persist.before_root_swap")
    with pytest.raises(SimulatedCrash):
        t.persist()
    rig.crash()
    with pytest.raises(RecoveryError):
        rig.restore()


def test_repeated_crash_restore_cycles(rig):
    sig = _build_and_persist(rig)
    for cycle in range(4):
        t = rig.tree
        leaf = sorted(t.leaves())[cycle]
        t.set_payload(leaf, (float(cycle), 0, 0, 0))
        if cycle % 2 == 0:
            rig.crash(seed=cycle)
            t = rig.restore()
            assert _tree_signature(t) == sig
        else:
            t.persist(transform=False)
            sig = _tree_signature(t)
    t.check_invariants()


def test_gc_after_recovery_reclaims_crash_garbage(rig):
    _build_and_persist(rig)
    t = rig.tree
    # generate plenty of would-be-lost work
    for leaf in sorted(t.leaves())[:8]:
        t.refine(leaf)
    rig.crash()
    t = rig.restore()
    used_before = rig.nvbm.used
    res = t.gc()
    assert res.swept > 0
    assert rig.nvbm.used < used_before
    t.check_invariants()
    validate_tree(t)


def test_restore_work_is_proportional_to_tree_not_to_garbage(rig):
    """Near-instantaneous recovery: restore reads the persistent tree only
    (GC of crash garbage is deferred)."""
    _build_and_persist(rig)
    t = rig.tree
    n_tree = t.num_octants()
    for leaf in sorted(t.leaves()):
        t.refine(leaf)  # lots of doomed work
    rig.crash()
    reads_before = rig.nvbm.device.stats.reads
    t = rig.restore()
    reads = rig.nvbm.device.stats.reads - reads_before
    # one read per restored octant plus small constant overhead
    assert reads <= n_tree + 5


def test_epoch_advances_past_restored_records(rig):
    _build_and_persist(rig)
    rig.crash()
    t = rig.restore()
    prev_root = rig.nvbm.roots.get("V_prev")
    max_epoch = max(
        rig.nvbm.read_octant(h).epoch for h in t.reachable_from(prev_root)
    )
    assert t.epoch > max_epoch
    # therefore the first write after recovery COWs instead of corrupting
    leaf = sorted(t.leaves())[0]
    old = t.handle_of(leaf)
    t.set_payload(leaf, (1.0, 0, 0, 0))
    assert t.handle_of(leaf) != old


@pytest.mark.parametrize("seed", range(6))
def test_torn_write_fuzz(rig, seed):
    """Random torn-line outcomes at crash never corrupt the restored tree."""
    sig = _build_and_persist(rig)
    t = rig.tree
    rng = np.random.default_rng(seed)
    # interleave DRAM-free and COW work with cache-resident writes
    for leaf in sorted(t.leaves())[: 4 + seed]:
        t.set_payload(leaf, (rng.random(), 0, 0, 0))
    t.refine(sorted(t.leaves())[seed])
    rig.crash(seed=seed)
    t = rig.restore()
    assert _tree_signature(t) == sig
    t.check_invariants()
