"""Core-test fixtures: PM-octrees over small arenas with injectors."""

import pytest

from repro.config import DRAM_SPEC, NVBM_SPEC, PMOctreeConfig
from repro.core.api import pm_create
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.failure import FailureInjector
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM


class PMRig:
    """One rank's worth of PM-octree machinery, crashed and restored at will."""

    def __init__(self, dram_octants=4096, nvbm_octants=1 << 16, dim=2,
                 **config_kwargs):
        self.clock = SimClock()
        self.dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, self.clock, dram_octants)
        self.nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, self.clock, nvbm_octants)
        self.injector = FailureInjector()
        config_kwargs.setdefault("dram_capacity_octants", dram_octants)
        self.config = PMOctreeConfig(**config_kwargs)
        self.dim = dim
        self.tree = pm_create(self.dram, self.nvbm, dim=dim,
                              config=self.config, injector=self.injector)

    def crash(self, seed=0):
        import numpy as np

        self.dram.crash()
        self.nvbm.crash(np.random.default_rng(seed))

    def restore(self):
        from repro.core.api import pm_restore

        self.injector.disarm()
        self.tree = pm_restore(self.dram, self.nvbm, dim=self.dim,
                               config=self.config, injector=self.injector)
        return self.tree


@pytest.fixture
def rig():
    return PMRig()


@pytest.fixture
def small_dram_rig():
    """DRAM only fits 64 octants: exercises eviction merging constantly."""
    return PMRig(dram_octants=64)
