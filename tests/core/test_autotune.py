"""C0 auto-tuner (§6 future work) behaviour."""


from repro.config import SolverConfig
from repro.core.autotune import C0AutoTuner, autotuned_persistence
from repro.solver.simulation import DropletSimulation
from tests.core.conftest import PMRig


def _persisted_rig(dram_octants=512, budget=64, levels=3):
    rig = PMRig(dram_octants=dram_octants, dram_capacity_octants=budget)
    t = rig.tree
    for _ in range(levels):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)
    return rig


def test_grows_under_eviction_pressure():
    rig = _persisted_rig(budget=16)
    t = rig.tree
    tuner = C0AutoTuner(min_budget=8, grow_step=32)
    # force eviction churn: load + refine beyond the tiny budget
    t.register_feature(lambda loc, p: True)
    from repro.core.transform import detect_and_transform

    detect_and_transform(t)
    before = t.config.dram_capacity_octants
    # refine in DRAM until evictions fire
    for leaf in sorted(t.leaves())[:8]:
        if t.is_leaf(leaf):
            t.refine(leaf)
    assert t.stats.evictions > 0 or rig.dram.used > 0
    t.stats.evictions += 1  # ensure the delta is visible to the tuner
    d = tuner.observe(t)
    assert d.action == "grow"
    assert t.config.dram_capacity_octants > before


def test_shrinks_when_underutilised():
    rig = _persisted_rig(budget=400)
    t = rig.tree
    tuner = C0AutoTuner(min_budget=8, low_watermark=0.5, grow_step=8)
    # after persist(transform=False) C0 is empty: budget 400, usage ~0
    d = tuner.observe(t)
    assert d.action == "shrink"
    assert t.config.dram_capacity_octants < 400
    assert t.config.dram_capacity_octants >= tuner.min_budget


def test_holds_in_steady_state():
    rig = PMRig(dram_octants=512, dram_capacity_octants=64)
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    # keep C0 resident so it is genuinely *using* its budget (21 of 64)
    t.persist(transform=False, keep_resident=True)
    tuner = C0AutoTuner(min_budget=8, low_watermark=0.25)
    d = tuner.observe(t)
    assert d.action == "hold"
    assert t.config.dram_capacity_octants == 64


def test_budget_clamped_to_arena():
    rig = _persisted_rig(dram_octants=128, budget=120)
    t = rig.tree
    tuner = C0AutoTuner(min_budget=8, grow_step=1000, max_budget=1 << 20)
    t.stats.evictions += 1
    tuner.observe(t)
    assert t.config.dram_capacity_octants <= 128  # never beyond the arena


def test_history_recorded():
    rig = _persisted_rig()
    tuner = C0AutoTuner()
    for _ in range(3):
        tuner.observe(rig.tree)
    assert len(tuner.history) == 3
    assert tuner.current_budget == tuner.history[-1].budget_after
    assert [d.step for d in tuner.history] == [1, 2, 3]


def test_autotuned_persistence_hook_runs_end_to_end():
    rig = PMRig(dram_octants=1 << 12, dram_capacity_octants=64)
    tuner = C0AutoTuner(min_budget=32, grow_step=64)
    solver = SolverConfig(dim=2, min_level=2, max_level=5, dt=0.01)
    sim = DropletSimulation(
        rig.tree, solver, clock=rig.clock,
        persistence=autotuned_persistence(tuner),
    )
    sim.run(10)
    assert len(tuner.history) == 10
    rig.tree.check_invariants()
    # budgets stayed in band
    for d in tuner.history:
        assert tuner.min_budget <= d.budget_after <= rig.dram.capacity


def test_tuner_beats_fixed_small_budget():
    """Starting from a too-small budget, the tuner self-corrects: fewer
    NVBM writes and less simulated time than staying fixed."""

    def run(tune: bool):
        rig = PMRig(dram_octants=1 << 12, dram_capacity_octants=48)
        tuner = C0AutoTuner(min_budget=48, grow_step=128)
        solver = SolverConfig(dim=2, min_level=2, max_level=5, dt=0.01)
        persistence = (
            autotuned_persistence(tuner)
            if tune
            else (lambda s: s.tree.persist(keep_resident=True))
        )
        sim = DropletSimulation(rig.tree, solver, clock=rig.clock,
                                persistence=persistence)
        sim.run(12)
        return rig.nvbm.device.stats.writes, rig.clock.now_ns

    tuned_writes, tuned_time = run(tune=True)
    fixed_writes, fixed_time = run(tune=False)
    assert tuned_writes < fixed_writes
    assert tuned_time < fixed_time


def _baselined(budget=64, **tuner_kwargs):
    """A persisted rig plus a tuner that has already taken one observation
    (so the next deltas are exactly what the test injects)."""
    rig = _persisted_rig(budget=budget)
    tuner_kwargs.setdefault("min_budget", budget)
    tuner = C0AutoTuner(**tuner_kwargs)
    tuner.observe(rig.tree)
    return rig, tuner


def test_eviction_churn_without_write_pressure_holds():
    """The fixed gate: eviction deltas alone no longer justify growth —
    the churn must have cost real NVBM writes (the bug left
    ``nvbm_writes_delta`` computed but unused)."""
    rig, tuner = _baselined()
    t = rig.tree
    before = t.config.dram_capacity_octants
    t.stats.evictions += 1  # churn, but zero NVBM writes since baseline
    d = tuner.observe(t)
    assert d.action == "hold"
    assert d.evictions_delta == 1 and d.nvbm_writes_delta == 0
    assert t.config.dram_capacity_octants == before


def test_grows_on_eviction_with_write_pressure():
    rig, tuner = _baselined()
    t = rig.tree
    before = t.config.dram_capacity_octants
    t.stats.evictions += 1
    t.nvbm.device.stats.writes += tuner.write_pressure  # the churn's cost
    d = tuner.observe(t)
    assert d.action == "grow"
    assert d.nvbm_writes_delta == tuner.write_pressure
    assert t.config.dram_capacity_octants > before


def test_grows_on_hot_spill_alone():
    """A transformation that could not fit a hot subtree is a budget
    bottleneck even when no eviction merge fired."""
    rig, tuner = _baselined()
    t = rig.tree
    before = t.config.dram_capacity_octants
    t.stats.hot_spills += 1
    d = tuner.observe(t)
    assert d.action == "grow"
    assert d.hot_spills_delta == 1 and d.evictions_delta == 0
    assert t.config.dram_capacity_octants > before


def test_transform_reports_hot_spills():
    """End to end: a hot working set larger than the budget makes
    ``detect_and_transform`` record a spill, which the tuner acts on."""
    from repro.core.transform import detect_and_transform

    rig = _persisted_rig(budget=16)
    t = rig.tree
    t.register_feature(lambda loc, p: True)  # everything is hot
    detect_and_transform(t)
    assert t.stats.hot_spills > 0
