"""Odds and ends of the PMOctree surface: point location, budgets, stats."""

import pytest

from repro.errors import ReproError
from repro.octree import morton
from tests.core.conftest import PMRig


def test_find_leaf_at(rig):
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    loc = t.find_leaf_at((0.9, 0.1))
    assert morton.coords_of(loc, 2) == (3, 0)
    assert t.is_leaf(loc)
    # works identically after octants migrate to NVBM
    t.persist(transform=False)
    assert t.find_leaf_at((0.9, 0.1)) == loc
    with pytest.raises(ValueError):
        t.find_leaf_at((0.5, 0.5, 0.5))


def test_c0_capacity_properties():
    rig = PMRig(dram_octants=256, dram_capacity_octants=100)
    t = rig.tree
    assert t.c0_capacity == 100  # min(arena, budget)
    assert t.c0_free == 99  # root octant is resident
    from dataclasses import replace

    t.config = replace(t.config, dram_capacity_octants=10_000)
    assert t.c0_capacity == 256  # capped by the arena


def test_stats_accumulate(rig):
    t = rig.tree
    for leaf in list(t.leaves()):
        t.refine(leaf)
    t.persist(transform=False)
    leaf = sorted(t.leaves())[0]
    t.set_payload(leaf, (1.0, 0, 0, 0))
    t.persist(transform=False)
    t.gc()
    s = t.stats
    assert s.persists == 2
    assert s.merges >= 1
    assert s.cow_copies >= 2
    assert s.gc_runs == 1
    assert s.marked_deleted >= 1
    assert s.octants_reclaimed >= 1


def test_handle_of_missing(rig):
    with pytest.raises(ReproError):
        rig.tree.handle_of(0xDEAD)


def test_tree_depth(rig):
    t = rig.tree
    assert t.tree_depth() == 0
    loc = t.refine(morton.ROOT_LOC)[0]
    t.refine(loc)
    assert t.tree_depth() == 2


def test_memory_usage_counts_both_arenas(rig):
    t = rig.tree
    for leaf in list(t.leaves()):
        t.refine(leaf)
    assert t.memory_usage_octants() == rig.dram.used + rig.nvbm.used == 5
    t.persist(transform=False)
    assert t.memory_usage_octants() == rig.nvbm.used  # DRAM emptied


def test_register_feature(rig):
    fn = lambda loc, p: True
    rig.tree.register_feature(fn)
    assert fn in rig.tree.features


def test_gc_result_reclaimed_alias(rig):
    t = rig.tree
    t.refine(morton.ROOT_LOC)
    t.persist(transform=False)
    res = t.gc()
    assert res.reclaimed == res.swept
