"""Remote replicas and recovery onto a replacement node (§3.4 scenario 2)."""

import pytest

from repro.config import DRAM_SPEC, NVBM_SPEC, OCTANT_RECORD_SIZE
from repro.core.replication import (
    ReplicaStore,
    compute_delta,
    restore_from_replica,
    ship_delta,
)
from repro.errors import RecoveryError
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree import morton
from repro.octree.store import validate_tree


def _fresh_arenas():
    clock = SimClock()
    return (
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 4096),
        MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 16),
    )


def _signature(tree):
    return {loc: tree.get_payload(loc) for loc in tree.leaves()}


def test_delta_before_persist_rejected(rig):
    with pytest.raises(RecoveryError):
        compute_delta(rig.tree, ReplicaStore())


def test_first_ship_is_full_tree(rig):
    t = rig.tree
    for leaf in list(t.leaves()):
        t.refine(leaf)
    t.persist(transform=False)
    replica = ReplicaStore()
    shipped = ship_delta(t, replica)
    assert shipped == 5 * OCTANT_RECORD_SIZE
    assert len(replica.records) == 5
    assert replica.root == rig.nvbm.roots.get("V_prev")


def test_subsequent_ships_are_deltas(rig):
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)
    replica = ReplicaStore()
    full = ship_delta(t, replica)
    # one leaf changes -> only the rewritten path ships
    leaf = morton.loc_from_coords(2, (2, 2), 2)
    t.set_payload(leaf, (4.0, 0, 0, 0))
    t.persist(transform=False)
    delta = ship_delta(t, replica)
    assert delta == 3 * OCTANT_RECORD_SIZE  # leaf + parent + root
    assert delta < full


def test_replica_prunes_stale_records(rig):
    t = rig.tree
    for leaf in list(t.leaves()):
        t.refine(leaf)
    t.persist(transform=False)
    replica = ReplicaStore()
    ship_delta(t, replica)
    t.coarsen(morton.ROOT_LOC)
    t.persist(transform=False)
    ship_delta(t, replica)
    # replica holds exactly the live persistent version (1 root octant)
    assert len(replica.records) == 1


def test_restore_on_replacement_node(rig):
    """The crashed node never returns: rebuild from the peer's replica."""
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    for i, leaf in enumerate(sorted(t.leaves())):
        t.set_payload(leaf, (float(i), 0, 0, 0))
    t.persist(transform=False)
    sig = _signature(t)
    replica = ReplicaStore()
    ship_delta(t, replica)

    # node lost entirely: new arenas on a replacement node
    new_dram, new_nvbm = _fresh_arenas()
    t2 = restore_from_replica(replica, new_dram, new_nvbm, dim=2)
    assert _signature(t2) == sig
    validate_tree(t2)
    t2.check_invariants()
    # and the recovered tree is fully usable
    t2.refine(sorted(t2.leaves())[0])
    t2.persist(transform=False)


def test_restore_from_empty_replica_rejected():
    new_dram, new_nvbm = _fresh_arenas()
    with pytest.raises(RecoveryError):
        restore_from_replica(ReplicaStore(), new_dram, new_nvbm)


def test_swizzling_rewrites_all_pointers(rig):
    """Records on the new node must never point into the dead node's arenas."""
    t = rig.tree
    for leaf in list(t.leaves()):
        t.refine(leaf)
    t.persist(transform=False)
    replica = ReplicaStore()
    ship_delta(t, replica)
    new_dram, new_nvbm = _fresh_arenas()
    restore_from_replica(replica, new_dram, new_nvbm, dim=2)
    for h in list(new_nvbm.live_handles()):
        rec = new_nvbm.read_octant(h)
        for child in rec.live_children():
            # every pointer resolves on the NEW node (a raw copy of the old
            # records would reference unallocated slots here)
            assert new_nvbm.contains(child)


def test_replica_survives_while_host_churns(rig):
    t = rig.tree
    for _ in range(2):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    t.persist(transform=False)
    replica = ReplicaStore()
    ship_delta(t, replica)
    for step in range(3):
        t.set_payload(sorted(t.leaves())[step], (float(step), 0, 0, 0))
        t.persist(transform=False)
        ship_delta(t, replica)
        t.gc()
    sig = _signature(t)
    new_dram, new_nvbm = _fresh_arenas()
    t2 = restore_from_replica(replica, new_dram, new_nvbm, dim=2)
    assert _signature(t2) == sig
