"""PM-octree as an AdaptiveTree: meshing operations and invariants."""

import pytest

from repro.errors import ReproError
from repro.octree import morton
from repro.octree.balance import balance_tree, is_balanced
from repro.octree.mesh import extract_mesh
from repro.octree.refine import Action, RefinementEngine
from repro.octree.store import validate_tree


def test_fresh_tree_is_root_leaf_in_dram(rig):
    t = rig.tree
    assert t.num_octants() == 1
    assert t.is_leaf(morton.ROOT_LOC)
    assert rig.dram.used == 1
    assert rig.nvbm.used == 0
    t.check_invariants()


def test_refine_coarsen_roundtrip(rig):
    t = rig.tree
    kids = t.refine(morton.ROOT_LOC)
    assert len(kids) == 4
    assert t.num_octants() == 5
    t.coarsen(morton.ROOT_LOC)
    assert t.num_octants() == 1
    validate_tree(t)
    t.check_invariants()


def test_refine_non_leaf_rejected(rig):
    rig.tree.refine(morton.ROOT_LOC)
    with pytest.raises(ReproError):
        rig.tree.refine(morton.ROOT_LOC)


def test_coarsen_non_parent_rejected(rig):
    with pytest.raises(ReproError):
        rig.tree.coarsen(morton.ROOT_LOC)
    kids = rig.tree.refine(morton.ROOT_LOC)
    rig.tree.refine(kids[0])
    with pytest.raises(ReproError):
        rig.tree.coarsen(morton.ROOT_LOC)


def test_payloads(rig):
    t = rig.tree
    kids = t.refine(morton.ROOT_LOC)
    t.set_payload(kids[2], (1.5, 2.5, 0.0, 0.0))
    assert t.get_payload(kids[2]) == (1.5, 2.5, 0.0, 0.0)
    assert t.get_payload(kids[0]) == (0.0, 0.0, 0.0, 0.0)


def test_children_inherit_payload(rig):
    t = rig.tree
    t.set_payload(morton.ROOT_LOC, (7.0, 0.0, 0.0, 0.0))
    for k in t.refine(morton.ROOT_LOC):
        assert t.get_payload(k)[0] == 7.0


def test_3d_pm_octree():
    from tests.core.conftest import PMRig

    rig = PMRig(dim=3)
    kids = rig.tree.refine(morton.ROOT_LOC)
    assert len(kids) == 8
    rig.tree.persist()
    rig.tree.check_invariants()
    validate_tree(rig.tree)


def test_balance_runs_on_pmoctree(rig):
    t = rig.tree
    loc = t.refine(morton.ROOT_LOC)[0]
    for _ in range(3):
        loc = t.refine(loc)[-1]
    assert not is_balanced(t)
    balance_tree(t)
    assert is_balanced(t)
    t.check_invariants()


def test_refinement_engine_runs_on_pmoctree(rig):
    def crit(loc, payload):
        lo, _ = morton.cell_bounds(loc, 2)
        return Action.REFINE if lo[0] < 0.25 else Action.KEEP

    engine = RefinementEngine(crit, max_level=3)
    engine.adapt(rig.tree, rounds=5)
    validate_tree(rig.tree)
    rig.tree.check_invariants()


def test_mesh_extraction_on_pmoctree(rig):
    t = rig.tree
    kids = t.refine(morton.ROOT_LOC)
    t.refine(kids[0])
    mesh = extract_mesh(t)
    assert mesh.num_elements == 7
    assert len(mesh.dangling) == 2


def test_balance_across_persist(rig):
    """Meshing routines keep working after octants migrate to NVBM."""
    t = rig.tree
    t.refine(morton.ROOT_LOC)
    t.persist()
    loc = t.find_leaf_at_root = None  # not part of protocol; use refine
    kids = morton.children_of(morton.ROOT_LOC, 2)
    deep = t.refine(kids[0])
    for _ in range(2):
        deep = t.refine(deep[-1])
    balance_tree(t)
    assert is_balanced(t)
    validate_tree(t)
    t.check_invariants()


def test_memory_usage_and_c0_size(rig):
    t = rig.tree
    t.refine(morton.ROOT_LOC)
    assert t.memory_usage_octants() == 5
    assert t.c0_size() == 5
    t.persist(transform=False)
    assert t.c0_size() == 0  # all merged out
    assert rig.dram.used == 0


def test_delete_all(rig):
    t = rig.tree
    t.refine(morton.ROOT_LOC)
    t.persist()
    t.delete_all()
    assert rig.dram.used == 0
    assert rig.nvbm.used == 0
    assert t.num_octants() == 0
