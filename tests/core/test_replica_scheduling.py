"""Replica peer selection (the §3.4/§6 scheduler)."""


from repro.core.replication import choose_replica_peer
from repro.nvbm.records import OctantRecord
from repro.parallel.cluster import SimulatedCluster


def _cluster(nranks=40):
    # Titan spec: 16 cores/node -> ranks 0-15 node 0, 16-31 node 1, ...
    return SimulatedCluster(nranks, dram_octants_per_rank=64,
                            nvbm_octants_per_rank=64)


def test_peer_is_on_another_node():
    cluster = _cluster()
    peer = choose_replica_peer(cluster, host_rank=0)
    assert peer is not None
    assert cluster.ranks[peer].node != cluster.ranks[0].node


def test_peer_prefers_emptier_nvbm():
    cluster = _cluster()
    # fill most NVBM arenas except rank 20's (node 1)
    for ctx in cluster.ranks:
        if ctx.node == 0 or ctx.rank == 20:
            continue
        nv = ctx.resources["nvbm"]
        for _ in range(32):
            nv.new_octant(OctantRecord())
    peer = choose_replica_peer(cluster, host_rank=0)
    assert peer == 20


def test_single_node_cluster_has_no_peer():
    cluster = _cluster(nranks=8)  # all on node 0
    assert choose_replica_peer(cluster, host_rank=0) is None


def test_dead_ranks_skipped():
    cluster = _cluster(nranks=32)  # nodes 0 and 1
    cluster.kill_node(1)
    assert choose_replica_peer(cluster, host_rank=0) is None
    # host on node 1 (dead ranks can't host, but selection still works the
    # other way): a live node-0 rank serves a node-1 host
    peer = choose_replica_peer(cluster, host_rank=16)
    assert peer is not None
    assert cluster.ranks[peer].node == 0


def test_end_to_end_replica_on_chosen_peer():
    """Ship deltas to the scheduler-chosen peer's NVBM arena and recover."""
    from repro.config import PMOctreeConfig
    from repro.core.api import pm_create
    from repro.core.replication import ReplicaStore, restore_from_replica, ship_delta
    from repro.octree import morton

    cluster = _cluster(nranks=32)
    host = cluster.ranks[0]
    tree = pm_create(host.resources["dram"], host.resources["nvbm"], dim=2,
                     config=PMOctreeConfig(dram_capacity_octants=64))
    tree.refine(morton.ROOT_LOC)
    tree.persist(transform=False)
    peer = choose_replica_peer(cluster, host_rank=0)
    replica = ReplicaStore()
    shipped = ship_delta(tree, replica)
    assert shipped > 0
    # node 0 dies; recover on the peer's node using its arenas
    cluster.kill_node(0)
    peer_ctx = cluster.ranks[peer]
    t2 = restore_from_replica(
        replica, peer_ctx.resources["dram"], peer_ctx.resources["nvbm"], dim=2
    )
    assert t2.num_octants() == 5
