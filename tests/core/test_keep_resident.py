"""Incremental persistence: the keep-resident merge path (§3.3).

``persist(keep_resident=True)`` writes the NVBM shadow without evicting C0,
so a subtree that stays hot across persist points is never recopied.  These
tests pin down the semantics the runtime and Fig 11 depend on.
"""


from repro.nvbm.pointers import is_dram
from repro.octree import morton
from repro.octree.store import validate_tree
from tests.core.conftest import PMRig


def _rig_with_tree(levels=2, **kw):
    rig = PMRig(**kw)
    t = rig.tree
    for _ in range(levels):
        for leaf in list(t.leaves()):
            t.refine(leaf)
    return rig, t


def test_keep_resident_preserves_c0():
    rig, t = _rig_with_tree()
    assert rig.dram.used == t.num_octants()  # everything starts in C0
    t.persist(transform=False, keep_resident=True)
    # still resident...
    assert rig.dram.used == t.num_octants()
    assert all(is_dram(h) for h in t._index.values())
    # ...but a complete NVBM shadow exists and is the persistent version
    assert rig.nvbm.used >= t.num_octants()
    prev = t.reachable_from(rig.nvbm.roots.get("V_prev"))
    assert len(prev) == t.num_octants()
    t.check_invariants()


def test_shadow_survives_crash_while_resident():
    rig, t = _rig_with_tree()
    t.persist(keep_resident=True)
    sig = {loc: t.get_payload(loc) for loc in t.leaves()}
    rig.crash()
    t2 = rig.restore()
    assert {loc: t2.get_payload(loc) for loc in t2.leaves()} == sig
    validate_tree(t2)


def test_second_persist_of_clean_tree_writes_almost_nothing():
    rig, t = _rig_with_tree()
    t.persist(keep_resident=True)
    w0 = rig.nvbm.device.stats.writes
    t.persist(keep_resident=True)  # nothing changed in between
    delta = rig.nvbm.device.stats.writes - w0
    # only bookkeeping (root slots, flush fence), no record rewrites
    assert delta <= 2


def test_dirty_octants_rewritten_clean_shared():
    rig, t = _rig_with_tree()
    t.persist(keep_resident=True)
    leaf = morton.loc_from_coords(2, (1, 1), 2)
    t.set_payload(leaf, (5.0, 0, 0, 0))
    prev_before = t.reachable_from(rig.nvbm.roots.get("V_prev"))
    t.persist(keep_resident=True)
    prev_after = t.reachable_from(rig.nvbm.roots.get("V_prev"))
    # exactly the dirtied leaf's root path got new shadow records
    changed = len(prev_after - prev_before)
    assert changed == 3  # leaf + level-1 parent + root
    # old records still exist for the previous version until GC
    t.gc()
    t.check_invariants()


def test_origins_track_shadow():
    rig, t = _rig_with_tree()
    t.persist(keep_resident=True)
    prev = t.reachable_from(rig.nvbm.roots.get("V_prev"))
    # every resident octant's origin is a record of the persistent version
    assert set(t._origin) == set(t._index)
    assert set(t._origin.values()) <= prev


def test_static_chunk_reload_without_transform():
    """When pressure evicts everything and transform is off, persist
    re-seeds C0 with a budget-sized chunk (the static layout baseline)."""
    rig, t = _rig_with_tree(levels=3, dram_octants=4096)
    # shrink the budget below the tree size, force eviction
    from dataclasses import replace

    t.config = replace(t.config, dram_capacity_octants=24)
    t._ensure_dram_capacity(1)
    assert t.c0_size() == 0  # whole-tree C0 got evicted
    t.persist(transform=False, keep_resident=True)
    assert 0 < t.c0_size() <= 24  # a static chunk came back
    t.check_invariants()


def test_overlap_stays_high_across_resident_persists():
    rig, t = _rig_with_tree()
    t.persist(keep_resident=True)
    for step in range(3):
        leaf = sorted(t.leaves())[step]
        t.set_payload(leaf, (float(step), 0, 0, 0))
        assert t.overlap_ratio() > 0.7  # most octants logically shared
        t.persist(keep_resident=True)
        t.gc()
    validate_tree(t)
