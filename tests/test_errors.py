"""Exception-hierarchy contract: types, payloads, messages."""

import pytest

from repro import errors


def test_hierarchy():
    for exc in (
        errors.OutOfMemoryError,
        errors.InvalidHandleError,
        errors.SimulatedCrash,
        errors.RecoveryError,
        errors.ConsistencyError,
        errors.StorageError,
        errors.PartitionError,
        errors.GCDisabledError,
    ):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)


def test_out_of_memory_payload():
    e = errors.OutOfMemoryError("nvbm[3]", 4096)
    assert e.device == "nvbm[3]"
    assert e.capacity == 4096
    assert "nvbm[3]" in str(e)
    assert "4096" in str(e)


def test_simulated_crash_payload():
    e = errors.SimulatedCrash("persist.before_root_swap")
    assert e.point == "persist.before_root_swap"
    assert "persist.before_root_swap" in str(e)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.GCDisabledError("merge in flight")
