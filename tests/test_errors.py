"""Exception-hierarchy contract: types, payloads, messages."""

import pytest

from repro import errors


def test_hierarchy():
    for exc in (
        errors.OutOfMemoryError,
        errors.InvalidHandleError,
        errors.SimulatedCrash,
        errors.RecoveryError,
        errors.ConsistencyError,
        errors.StorageError,
        errors.PartitionError,
        errors.GCDisabledError,
        errors.AllRanksDeadError,
        errors.NetworkPartitionError,
        errors.ReplicationTimeoutError,
    ):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)


def test_out_of_memory_payload():
    e = errors.OutOfMemoryError("nvbm[3]", 4096)
    assert e.device == "nvbm[3]"
    assert e.capacity == 4096
    assert "nvbm[3]" in str(e)
    assert "4096" in str(e)


def test_simulated_crash_payload():
    e = errors.SimulatedCrash("persist.before_root_swap")
    assert e.point == "persist.before_root_swap"
    assert "persist.before_root_swap" in str(e)


def test_all_ranks_dead_payload():
    e = errors.AllRanksDeadError([2, 0, 1])
    assert e.dead_ranks == [0, 1, 2]
    assert "[0, 1, 2]" in str(e)


def test_network_partition_payload():
    e = errors.NetworkPartitionError([[1, 0], [3, 2]], 1500.0)
    assert e.groups == ((0, 1), (2, 3))
    assert e.now_ns == 1500.0
    assert "partition" in str(e)


def test_replication_timeout_payload():
    e = errors.ReplicationTimeoutError(7, 9, "ack lost")
    assert e.seq == 7
    assert e.attempts == 9
    assert "seq=7" in str(e) and "ack lost" in str(e)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.GCDisabledError("merge in flight")
