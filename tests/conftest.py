"""Shared fixtures: arenas, clocks, small trees."""

import pytest

from repro.config import DRAM_SPEC, NVBM_SPEC
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree.tree import PointerOctree


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def dram_arena(clock):
    return MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, capacity_octants=1 << 16)


@pytest.fixture
def nvbm_arena(clock):
    return MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=1 << 16)


@pytest.fixture
def quadtree(dram_arena):
    """An in-core quadtree rooted in DRAM."""
    return PointerOctree(dram_arena, dim=2)


@pytest.fixture
def octree3d(dram_arena):
    return PointerOctree(dram_arena, dim=3)
