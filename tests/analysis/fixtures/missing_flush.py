"""Planted bug: an NVBM store reaches a publish with no flush — and both
the store and the publish live in callees, so only the interprocedural
pass can see the pair."""

SLOT_PREV = 0


def mf_store(tree, rec, h):
    tree.nvbm.write_payload(h, rec)


def mf_commit(tree, h):
    tree.nvbm.roots.set(SLOT_PREV, h)


def mf_persist(tree, rec, h):
    mf_store(tree, rec, h)
    mf_commit(tree, h)  # BUG: no tree.nvbm.flush() before the commit
