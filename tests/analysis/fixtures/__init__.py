"""Deliberately-buggy mini-modules for the interprocedural analyzer tests.

These files are **parsed, never imported**: ``analyze_paths`` builds a call
graph from their source and the tests assert each detector fires with the
right call-chain witness.  Each file plants exactly the bugs its name says
(``clean.py`` plants none); function names are unique across the package so
witness chains are unambiguous.
"""

from pathlib import Path

FIXTURES_DIR = Path(__file__).parent
