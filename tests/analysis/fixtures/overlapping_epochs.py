"""Planted bug: two persist epochs overlap and the newer one stores into a
record the still-draining older epoch snapshotted as pending-flush.

This is the exact race the asynchronous epoch pipeline makes possible: an
enqueued epoch's dirty snapshot is sealed the moment it is queued, and any
later store landing inside that snapshot would be flushed with the *new*
epoch's bytes — torn durability the root-slot publish cannot express.  The
vector-clock checker (``OrderingTracker``) must flag it as
``cross-epoch-waf`` at position ``(epoch, rank, record)``; under
``--strict-epochs`` it must raise at the offending store.

The bug here is dynamic, not syntactic, so the driver takes the tracker
directly — the static analyzers have nothing to say about this file.
"""


def oe_race(tracker, handle):
    """Drive the overlap race; returns the sealed epoch's window id."""
    tracker.on_store(handle)  # the record epoch i will be responsible for
    # epoch i: a pipelined enqueue — its snapshot is final immediately
    sealed = tracker.on_epoch_open(rank=0, sealed=True, pending={handle})
    # epoch i+1 starts computing while epoch i's flush train is in the air
    tracker.on_epoch_open(rank=1, sealed=True, pending=set())
    tracker.on_store(handle)  # BUG: rewrites a record epoch i must flush
    return sealed


def oe_clean(tracker, handle):
    """The correct shape: COW gives epoch i+1 its own record."""
    tracker.on_store(handle)
    sealed = tracker.on_epoch_open(rank=0, sealed=True, pending={handle})
    tracker.on_epoch_open(rank=1, sealed=True, pending=set())
    tracker.on_store(handle + 1)  # the copy, not the snapshotted original
    return sealed
