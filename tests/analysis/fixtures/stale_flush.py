"""Planted bug: flushed once, stored again, published without the second
flush — the double-flush-elision case a single dirty bit cannot catch."""

SLOT_PREV = 0


def sf_touch_up(tree, rec, h):
    tree.nvbm.write_field(h, 8, rec)


def sf_persist(tree, rec, h):
    tree.nvbm.write_payload(h, rec)
    tree.nvbm.flush()
    sf_touch_up(tree, rec, h)  # BUG: re-dirties h after the flush
    tree.nvbm.roots.set(SLOT_PREV, h)
