"""Planted bugs: raw whole-record stores.  One without any pragma, one with
a bare (reason-less) pragma; the reasoned one is the sanctioned form and
must stay clean."""


def rw_unannotated(tree, rec, h):
    tree.nvbm.write_octant(h, rec)  # BUG: bypasses the field-granular API


def rw_bare_pragma(tree, rec, h):
    # pmlint: allow[raw-write]
    tree.nvbm.write_octant(h, rec)  # BUG: pragma has no reason string


def rw_reasoned(tree, rec, h):
    # pmlint: allow[raw-write]: fixture — every field of h changes here
    tree.nvbm.write_octant(h, rec)
