"""Planted coverage gaps: a mutate→publish window with no crash site in
it, and a journal retire with no site on its path.  ``uc_covered`` and
``uc_retire_covered`` carry a registered site and must be proven covered."""

SLOT_PREV = 0


def uc_uncovered(tree, rec, h):
    tree.nvbm.write_payload(h, rec)
    tree.nvbm.flush()
    tree.nvbm.roots.set(SLOT_PREV, h)  # BUG: no injector.site in the window


def uc_covered(tree, injector, rec, h):
    tree.nvbm.write_payload(h, rec)
    injector.site("persist.before_root_swap")
    tree.nvbm.flush()
    tree.nvbm.roots.set(SLOT_PREV, h)


def uc_retire_uncovered(entry):
    entry.published()
    entry.retired()  # BUG: the sweep can never crash before this retire


def uc_retire_covered(entry, injector):
    entry.published()
    injector.site("migrate.pre_retire")
    entry.retired()
