"""No planted bugs: the canonical store → site → flush → publish bracket.
Every detector must stay silent here (the golden negative)."""

SLOT_PREV = 0


def ok_store(tree, rec, h):
    tree.nvbm.write_payload(h, rec)
    tree.nvbm.write_child_slot(h, 0, h)


def ok_persist(tree, injector, rec, h):
    ok_store(tree, rec, h)
    injector.site("persist.before_flush")
    tree.nvbm.flush()
    injector.site("persist.before_root_swap")
    tree.nvbm.roots.set(SLOT_PREV, h)
