"""Planted bug: a migration-journal entry is retired on a path with no
publish evidence.  ``ur_retire_published`` shows the correct bracket and
must stay clean."""


def ur_retire_blind(entry):
    entry.retired()  # BUG: never published


def ur_drain(journal):
    for entry in journal:
        ur_retire_blind(entry)


def ur_retire_published(entry):
    entry.published()
    entry.retired()  # fine: publish evidence on the same path
