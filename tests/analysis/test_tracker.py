"""Ordering-tracker tests: each violation class fires exactly when the
crash-consistency argument says it must, and legitimate persist flows pass."""

import numpy as np
import pytest

from repro.analysis import OrderingTracker, install_tracker, uninstall_tracker
from repro.config import DRAM_SPEC, NVBM_SPEC
from repro.errors import OrderingViolationError
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.nvbm.records import OctantRecord


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def nvbm(clock):
    return MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=64)


@pytest.fixture
def dram(clock):
    return MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, capacity_octants=64)


def _rec(loc=1):
    return OctantRecord(loc=loc)


# ------------------------------------------------------- the violation zoo

def test_publish_before_flush(nvbm):
    tracker = install_tracker(nvbm, strict=True)
    h = nvbm.new_octant(_rec())
    with pytest.raises(OrderingViolationError, match="publish-before-flush"):
        nvbm.roots.set("V_prev", h)
    assert tracker.violations[0].kind == "publish-before-flush"


def test_flushed_publish_is_clean(nvbm):
    tracker = install_tracker(nvbm, strict=True)
    h = nvbm.new_octant(_rec())
    nvbm.flush()
    nvbm.roots.set("V_prev", h)
    assert tracker.violations == []
    assert tracker.published["V_prev"] == h


def test_double_flush_elision(nvbm):
    """flush once, store again, publish dirty — the event trace catches what
    a single dirty bit cannot distinguish from never-flushed."""
    tracker = install_tracker(nvbm, strict=True)
    h = nvbm.new_octant(_rec())
    nvbm.flush()
    nvbm.write_octant(h, _rec(loc=9))  # re-dirty after the flush
    with pytest.raises(OrderingViolationError, match="double-flush-elision"):
        nvbm.roots.set("V_prev", h)
    assert tracker.violations[0].kind == "double-flush-elision"


def test_publish_of_volatile(dram, nvbm):
    install_tracker(dram, nvbm, strict=True)
    h = dram.new_octant(_rec())
    with pytest.raises(OrderingViolationError, match="publish-of-volatile"):
        nvbm.roots.set("V_prev", h)


def test_free_of_published(nvbm):
    tracker = install_tracker(nvbm, strict=True)
    h = nvbm.new_octant(_rec())
    nvbm.flush()
    nvbm.roots.set("V_prev", h)
    with pytest.raises(OrderingViolationError, match="free-of-published"):
        nvbm.free(h)
    assert tracker.violations[0].kind == "free-of-published"


def test_store_to_published(nvbm):
    tracker = install_tracker(nvbm, strict=True)
    h = nvbm.new_octant(_rec())
    nvbm.flush()
    nvbm.roots.set("V_prev", h)
    with pytest.raises(OrderingViolationError, match="store-to-published"):
        nvbm.write_octant(h, _rec(loc=5))
    assert tracker.violations[0].kind == "store-to-published"


# ------------------------------------------------------------ scoping rules

def test_non_publish_slot_is_ignored(nvbm):
    tracker = install_tracker(nvbm, strict=True)
    h = nvbm.new_octant(_rec())
    nvbm.roots.set("V_curr", h)  # volatile bookkeeping, not a commit point
    assert tracker.violations == []


def test_null_publish_unpublishes(nvbm):
    tracker = install_tracker(nvbm, strict=True)
    h = nvbm.new_octant(_rec())
    nvbm.flush()
    nvbm.roots.set("V_prev", h)
    nvbm.roots.set("V_prev", 0)
    nvbm.free(h)  # no longer published: freeing is legal
    assert tracker.violations == []


def test_crash_clears_dirty_state(nvbm):
    tracker = install_tracker(nvbm, strict=True)
    h = nvbm.new_octant(_rec())
    nvbm.crash(np.random.default_rng(0))
    # whatever survived the crash was (by definition) made durable or
    # dropped; a later publish of the surviving bytes is not an ordering bug
    nvbm.roots.set("V_prev", h)
    assert tracker.violations == []
    assert tracker.counts["crashes"] == 1


def test_non_strict_mode_accumulates(nvbm):
    tracker = install_tracker(nvbm, strict=False)
    h1 = nvbm.new_octant(_rec(loc=1))
    h2 = nvbm.new_octant(_rec(loc=2))
    nvbm.roots.set("V_prev", h1)
    nvbm.roots.set("V_prev", h2)
    assert [v.kind for v in tracker.violations] == [
        "publish-before-flush", "publish-before-flush",
    ]
    assert all("handle" in row for row in tracker.report_rows())


def test_trace_records_event_order(nvbm):
    tracker = install_tracker(nvbm, strict=False)
    h = nvbm.new_octant(_rec())
    nvbm.flush()
    nvbm.roots.set("V_prev", h)
    events = [e.split(":", 1)[1] for e in tracker.trace_of(h)]
    assert events == ["store", "flush", "publish[V_prev]"]


def test_uninstall_detaches(nvbm):
    tracker = install_tracker(nvbm, strict=True)
    uninstall_tracker(nvbm)
    h = nvbm.new_octant(_rec())
    nvbm.roots.set("V_prev", h)  # unobserved: no raise
    assert tracker.violations == []


def test_one_tracker_may_watch_two_arenas(dram, nvbm):
    tracker = install_tracker(dram, nvbm, strict=False)
    dram.new_octant(_rec())
    nvbm.new_octant(_rec())
    assert tracker.counts["stores"] == 2


def test_standalone_tracker_custom_publish_slots():
    tracker = OrderingTracker(publish_slots=("root",), strict=False)
    tracker.on_store(0x1000001)
    tracker.on_publish("root", 0x1000001)
    assert [v.kind for v in tracker.violations] == ["publish-before-flush"]


# ------------------------------------------- epoch happens-before checker

def test_sync_pipeline_epochs_are_clean(nvbm):
    """One window open at a time — the synchronous persist shape — can
    never produce a cross-epoch violation (the checker is a structural
    no-op until persists overlap)."""
    tracker = install_tracker(nvbm, strict=True, strict_epochs=True)
    for loc in (1, 2, 3):
        h = nvbm.new_octant(_rec(loc))
        epoch = tracker.on_epoch_open()
        nvbm.flush()
        nvbm.roots.set("V_prev", h)
        tracker.on_epoch_close(epoch)
    assert tracker.violations == []
    assert tracker.counts["epochs"] == 3
    assert tracker.open_epochs == ()


def test_cross_epoch_waf_detected():
    """Two overlapped epochs: the newer epoch stores to a record the older
    epoch snapshotted as pending-flush — the write-after-flush race."""
    tracker = OrderingTracker(strict=False)
    h = 0x1000001
    tracker.on_store(h)            # dirty before epoch 1 opens
    e1 = tracker.on_epoch_open(rank=0)
    e2 = tracker.on_epoch_open(rank=1)   # pipelined persist overlaps
    tracker.on_store(h)            # epoch 2 races epoch 1's flush set
    kinds = [v.kind for v in tracker.violations]
    assert kinds == ["cross-epoch-waf"]
    v = tracker.violations[0]
    # the detail carries the vector-clock position (epoch, rank, record)
    assert f"({e1}, 0, {h})" in v.detail
    assert f"epoch {e2}" in v.detail
    assert tracker.open_epochs == (e1, e2)


def test_strict_epochs_raises_at_the_store():
    tracker = OrderingTracker(strict=False, strict_epochs=True)
    h = 0x1000002
    tracker.on_store(h)
    tracker.on_epoch_open()
    tracker.on_epoch_open()
    with pytest.raises(OrderingViolationError, match="cross-epoch-waf"):
        tracker.on_store(h)


def test_flush_discharges_epoch_pending():
    """A flush makes the record durable for every open window, so a later
    store is a fresh dirtying, not a race."""
    tracker = OrderingTracker(strict=False, strict_epochs=True)
    h = 0x1000003
    tracker.on_store(h)
    tracker.on_epoch_open()
    tracker.on_epoch_open()
    tracker.on_flush([h])
    tracker.on_store(h)            # no raise: the obligation was met
    assert tracker.violations == []


def test_epoch_close_by_id_and_innermost():
    tracker = OrderingTracker(strict=False)
    e1 = tracker.on_epoch_open()
    e2 = tracker.on_epoch_open()
    e3 = tracker.on_epoch_open()
    tracker.on_epoch_close(e2)       # close the middle window by id
    assert tracker.open_epochs == (e1, e3)
    tracker.on_epoch_close()         # 0 closes the innermost
    assert tracker.open_epochs == (e1,)
    tracker.on_epoch_close(999)      # unknown id: no-op
    assert tracker.open_epochs == (e1,)


def test_crash_kills_open_epoch_windows():
    tracker = OrderingTracker(strict=False, strict_epochs=True)
    h = 0x1000004
    tracker.on_store(h)
    tracker.on_epoch_open()
    tracker.on_epoch_open()
    tracker.on_crash()
    assert tracker.open_epochs == ()
    tracker.on_epoch_open()          # recovery re-drives a fresh epoch
    tracker.on_store(h)              # no stale pending set survives
    assert tracker.violations == []


def test_persist_brackets_an_epoch_end_to_end():
    """The real persist point opens/closes a window around its flush, so
    trace_run with strict epochs is exercised through the public path."""
    from repro.analysis import trace_run

    tracker = trace_run(steps=2, strict_epochs=True)
    assert tracker.strict_epochs is True
    assert tracker.counts["epochs"] >= 2     # one per persisted step
    assert tracker.open_epochs == ()         # every window was closed
    assert tracker.violations == []


def test_overlapping_epochs_fixture_is_flagged():
    """The planted overlap race in the fixtures package is caught, and the
    clean COW-shaped variant is not — the regression guard for the
    vector-clock checker itself."""
    from tests.analysis.fixtures.overlapping_epochs import oe_clean, oe_race

    tracker = OrderingTracker(strict=False)
    h = 0x1000010
    sealed = oe_race(tracker, h)
    assert [v.kind for v in tracker.violations] == ["cross-epoch-waf"]
    assert f"({sealed}, 0, {h})" in tracker.violations[0].detail

    clean = OrderingTracker(strict=False, strict_epochs=True)
    oe_clean(clean, 0x1000020)
    assert clean.violations == []


def test_injected_cross_epoch_write_on_live_pipeline():
    """An injected raw store into an in-flight epoch's snapshot, on a real
    pipelined tree with the tracker installed, raises under strict-epochs
    — the end-to-end form of the fixture's race."""
    from repro.analysis.sweep import _Rig

    rig = _Rig(strict_epochs=True, max_inflight=1)
    tree = rig.tree
    for leaf in list(tree.leaves()):
        tree.refine(leaf)
    for i, leaf in enumerate(sorted(tree.leaves())[:4]):
        tree.set_payload(leaf, (float(i), 1.0, 0.0, 0.0))
    tree.persist(transform=False)          # epoch enqueued, still in flight
    pending = tree._pipeline._queue[0].pending
    assert pending, "enqueued epoch must carry a dirty snapshot"
    victim = pending[0]
    payload = rig.nvbm.read_payload(victim)
    with pytest.raises(OrderingViolationError, match="cross-epoch-waf"):
        rig.nvbm.write_payload(victim, payload)
    tree._pipeline.reset()                 # do not leak the armed window
