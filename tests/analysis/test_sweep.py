"""Crash-site sweep tests: every registered site must be reachable by its
driver, fire, and recover onto a persisted state."""

import pytest

from repro.analysis import sweep_all, sweep_site, trace_run
from repro.analysis.sweep import SweepOutcome
from repro.nvbm import sites


def test_sweep_covers_the_whole_registry():
    outcomes = sweep_all(max_steps=8)
    assert sorted(o.site for o in outcomes) == sorted(sites.all_sites())


# one slow full pass is enough; per-site asserts give a readable failure
@pytest.fixture(scope="module")
def outcomes():
    return {o.site: o for o in sweep_all(max_steps=8)}


@pytest.mark.parametrize("site", sorted(sites.all_sites()))
def test_site_fires_and_recovers(outcomes, site):
    out = outcomes[site]
    assert out.fired, f"{site}: workload never reached the site"
    assert out.recovered, f"{site}: {out.detail}"
    assert out.violations == 0
    assert out.matched in ("last-persist", "committed-at-crash",
                           "re-driven", "rolled-back",
                           "re-driven+rolled-back", "recovery-re-driven",
                           "epoch-i", "epoch-i-1")
    assert out.ok


def test_post_commit_sites_land_on_the_committed_version(outcomes):
    # a crash after the atomic publish keeps the freshly committed state
    assert outcomes[sites.PERSIST_AFTER_ROOT_SWAP].matched == \
        "committed-at-crash"
    # a crash before the flush must fall back to the previous persist
    assert outcomes[sites.PERSIST_BEFORE_FLUSH].matched == "last-persist"


def test_unreached_site_reports_not_fired():
    name = "test.never_visited"
    sites.register(name, "registered but never declared in code")
    try:
        out = sweep_site(name, max_steps=2)
    finally:
        sites.unregister(name)
    assert out.fired is False
    assert out.recovered is None
    assert out.ok  # not-reached is a coverage note, not a recovery failure


def test_outcome_row_shape():
    row = SweepOutcome(site="x", fired=True, recovered=True,
                       matched="last-persist").to_row()
    assert set(row) == {"site", "fired", "recovered", "matched",
                       "violations", "detail"}


def test_trace_run_is_clean():
    tracker = trace_run(steps=4)
    assert tracker.violations == []
    # the workload must actually exercise the persistence surface
    assert tracker.counts["publishes"] > 0
    assert tracker.counts["flushes"] > 0
    assert tracker.counts["stores"] > 0
