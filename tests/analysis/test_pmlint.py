"""pmlint regression tests: the checker must catch the planted bugs
ISSUE-class history says humans actually write, and stay silent on the
library itself."""

import textwrap

from repro.analysis import lint_repo, lint_source


def _lint(body, path="<memory>"):
    return lint_source(textwrap.dedent(body), path=path)


def _rules(findings):
    return [f.rule for f in findings]


# ------------------------------------------------------------- missing-flush

def test_catches_publish_without_flush():
    findings = _lint(
        """
        def persist(self):
            h = self.nvbm.new_octant(rec)
            self.nvbm.roots.set(SLOT_PREV, h)
        """
    )
    assert _rules(findings) == ["missing-flush"]
    assert "no intervening" in findings[0].message


def test_catches_store_after_last_flush_in_publishing_function():
    findings = _lint(
        """
        def persist(self):
            self.nvbm.write_octant(h, rec)
            self.nvbm.flush()
            self.nvbm.roots.set(SLOT_PREV, h)
            self.nvbm.write_octant(h2, rec2)
        """
    )
    assert _rules(findings) == ["missing-flush"]
    assert "exits" in findings[0].message


def test_flush_between_store_and_publish_is_clean():
    findings = _lint(
        """
        def persist(self):
            self.nvbm.write_octant(h, rec)
            self.nvbm.flush()
            self.nvbm.roots.set(SLOT_PREV, h)
        """
    )
    assert findings == []


def test_swap_counts_as_publish():
    findings = _lint(
        """
        def persist(self):
            self.nvbm.new_octant(rec)
            self.nvbm.roots.swap(SLOT_PREV, SLOT_CURR)
        """
    )
    assert _rules(findings) == ["missing-flush"]


def test_non_publish_slot_store_is_not_a_commit_point():
    # V_curr is volatile bookkeeping; storing it unflushed is fine.
    findings = _lint(
        """
        def step(self):
            self.nvbm.write_octant(h, rec)
            self.nvbm.roots.set(SLOT_CURR, h)
        """
    )
    assert findings == []


def test_null_publish_is_not_a_commit_point():
    findings = _lint(
        """
        def reset(self):
            self.nvbm.write_octant(h, rec)
            self.nvbm.roots.set(SLOT_PREV, NULL_HANDLE)
        """
    )
    assert findings == []


def test_dram_writes_do_not_arm_the_rule():
    findings = _lint(
        """
        def step(self):
            self.dram.write_octant(h, rec)
            self.nvbm.roots.set(SLOT_PREV, h)
        """
    )
    assert findings == []


# --------------------------------------------------------------- bypass-cow

CORE_PATH = "src/repro/core/fake.py"


def test_catches_direct_write_in_core():
    findings = _lint(
        """
        def mutate(self, h, rec):
            self.nvbm.write_octant(h, rec)
        """,
        path=CORE_PATH,
    )
    assert _rules(findings) == ["bypass-cow"]


def test_ensure_writable_exempts_the_scope():
    findings = _lint(
        """
        def mutate(self, loc):
            h = self._ensure_writable(loc)
            self.nvbm.write_octant(h, rec)
        """,
        path=CORE_PATH,
    )
    assert findings == []


def test_allow_direct_write_pragma_single_line():
    findings = _lint(
        """
        def mutate(self, h, rec):
            # pmlint: allow-direct-write — record is fresh
            self.nvbm.write_octant(h, rec)
        """,
        path=CORE_PATH,
    )
    assert findings == []


def test_allow_direct_write_pragma_multi_line_comment_block():
    findings = _lint(
        """
        def mutate(self, h, rec):
            # pmlint: allow-direct-write — the record was allocated two
            # lines up, nothing persistent can reach it yet.
            self.nvbm.write_octant(h, rec)
        """,
        path=CORE_PATH,
    )
    assert findings == []


def test_new_octant_is_not_a_cow_bypass():
    findings = _lint(
        """
        def grow(self, rec):
            return self.nvbm.new_octant(rec)
        """,
        path=CORE_PATH,
    )
    assert findings == []


def test_direct_write_outside_core_is_not_flagged():
    findings = _lint(
        """
        def mutate(self, h, rec):
            self.nvbm.write_octant(h, rec)
        """,
        path="src/repro/harness/fake.py",
    )
    assert findings == []


# -------------------------------------------------------------- unknown-site

def test_catches_typoed_site_literal():
    findings = _lint(
        """
        def step(self):
            self.injector.site("presist.before_root_swap")
        """
    )
    assert _rules(findings) == ["unknown-site"]
    assert "presist.before_root_swap" in findings[0].message


def test_registered_site_literal_is_clean():
    findings = _lint(
        """
        def step(self):
            self.injector.site("persist.before_root_swap")
        """
    )
    assert findings == []


def test_catches_typoed_sites_constant():
    findings = _lint(
        """
        from repro.nvbm import sites

        def step(self):
            self.injector.site(sites.PERSIST_BEFOR_FLUSH)
        """
    )
    assert _rules(findings) == ["unknown-site"]


def test_real_sites_constant_is_clean():
    findings = _lint(
        """
        from repro.nvbm import sites

        def step(self):
            self.injector.site(sites.PERSIST_BEFORE_FLUSH)
        """
    )
    assert findings == []


def test_imported_name_checked():
    findings = _lint(
        """
        from repro.nvbm.sites import PERSIST_BEGIN

        def step(self):
            self.injector.site(PERSIST_BEGIN)
        """
    )
    assert findings == []


# ------------------------------------------------------------- misc plumbing

def test_ignore_pragma_suppresses_any_finding():
    findings = _lint(
        """
        def step(self):
            self.injector.site("not.a.site")  # pmlint: ignore — exercised typo
        """
    )
    assert findings == []


def test_syntax_error_becomes_a_finding():
    findings = _lint("def broken(:\n    pass\n")
    assert _rules(findings) == ["syntax-error"]


def test_nested_function_is_a_separate_scope():
    # the closure publishes flushed state; the outer scope's unflushed write
    # never reaches the closure's publish in any execution
    findings = _lint(
        """
        def outer(self):
            self.nvbm.write_octant(h, rec)

            def publish():
                self.nvbm.flush()
                self.nvbm.roots.set(SLOT_PREV, h)

            return publish
        """
    )
    assert findings == []


def test_library_is_clean():
    """Acceptance gate: `python -m repro analyze --static` has no findings."""
    assert lint_repo() == []
