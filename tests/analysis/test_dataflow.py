"""Interprocedural dataflow + coverage-prover tests.

The fixtures package (``tests/analysis/fixtures``) plants one bug per file;
each detector must fire there — with the call-chain witness naming the
frames the bug actually flows through — and stay silent on the clean
variants.  The real tree is then held to the golden standard: zero findings
and zero uncovered paths at HEAD.
"""

from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.analysis import analyze_paths, prove_coverage
from repro.analysis.dataflow import DataflowFinding

from tests.analysis.fixtures import FIXTURES_DIR


@pytest.fixture(scope="module")
def result():
    return analyze_paths([FIXTURES_DIR])


def _by_rule(result, rule):
    return [f for f in result.findings if f.rule == rule]


def _only(result, rule):
    found = _by_rule(result, rule)
    assert len(found) == 1, (rule, [f.describe() for f in found])
    return found[0]


# ------------------------------------------------------------- detectors

def test_missing_flush_interprocedural_witness(result):
    f = _only(result, "missing-flush")
    assert Path(f.path).name == "missing_flush.py"
    # the finding anchors at the publish inside the callee, and the chain
    # names the entry point that reached it
    assert "mf_persist" in f.chain[0]
    assert "mf_commit" in f.chain[-1]
    # the message carries the store's own witness chain (store is in a
    # *different* callee — only the interprocedural pass can pair them)
    assert "missing_flush.py:9" in f.message
    assert "mf_store" in f.message


def test_double_flush_elision_detected(result):
    f = _only(result, "double-flush-elision")
    assert Path(f.path).name == "stale_flush.py"
    assert "sf_persist" in f.chain[0]
    # the culprit is the post-flush store issued via the callee
    assert "sf_touch_up" in f.message
    assert "flushed once" in f.message


def test_publish_before_retire_detected(result):
    f = _only(result, "publish-before-retire")
    assert Path(f.path).name == "unpublished_retire.py"
    # dedup keeps the longest chain: the drain loop -> the blind retire
    assert "ur_drain" in f.chain[0]
    assert "ur_retire_blind" in f.chain[-1]
    # the properly-bracketed variant produced no finding
    assert all("ur_retire_published" not in fr
               for f2 in result.findings for fr in f2.chain)


def test_raw_write_and_bare_pragma_detected(result):
    raw = _only(result, "raw-write")
    assert Path(raw.path).name == "raw_write.py"
    assert "rw_unannotated" in raw.chain[0]
    assert "allow[raw-write]" in raw.message  # tells the fix

    bare = _only(result, "raw-write-no-reason")
    assert "rw_bare_pragma" in bare.chain[0]
    assert "reason is mandatory" in bare.message

    # the reasoned pragma is the sanctioned form
    assert all("rw_reasoned" not in fr
               for f in result.findings for fr in f.chain)


def test_clean_fixture_has_no_findings(result):
    assert not any("clean.py" in f.path for f in result.findings)


def test_fingerprint_is_line_stable(result):
    f = _only(result, "missing-flush")
    fp = f.fingerprint()
    assert fp.startswith("missing-flush//missing_flush.py//")
    # line numbers are stripped so insertions above do not churn baselines
    assert not any(ch.isdigit() for ch in fp.split("//")[-1])
    shifted = DataflowFinding(rule=f.rule, path=f.path, line=f.line + 40,
                              message=f.message,
                              chain=tuple(c.replace(":18", ":58")
                                          for c in f.chain))
    assert shifted.fingerprint() == fp


# ------------------------------------------------------- coverage prover

@pytest.fixture(scope="module")
def coverage(result):
    # a stub registry containing exactly the sites the fixtures declare:
    # unanchored-site then checks registry ⊆ declarations
    stub = SimpleNamespace(all_sites=lambda: frozenset({
        "persist.before_flush", "persist.before_root_swap",
        "migrate.pre_retire",
    }))
    return prove_coverage(result, sites_module=stub)


def test_uncovered_window_is_proven_uncovered(coverage):
    hits = [f for f in coverage.findings if f.rule == "uncovered-path"
            and Path(f.path).name == "uncovered.py"]
    assert len(hits) == 1
    assert "uc_uncovered" in hits[0].message
    assert "injector.site" in hits[0].message  # tells the fix


def test_covered_window_is_proven_covered(coverage):
    covered = [w for w in coverage.windows if w.covered]
    assert any("persist.before_root_swap" in w.sites for w in covered)
    # the clean fixture's window is covered by both of its sites
    clean = [w for w in covered if "clean.ok_persist" in w.roots]
    assert clean and set(clean[0].sites) == {
        "persist.before_flush", "persist.before_root_swap"}


def test_uncovered_retire_detected(coverage):
    hits = [f for f in coverage.findings if f.rule == "uncovered-retire"
            and Path(f.path).name == "uncovered.py"]
    assert len(hits) == 1
    assert "uc_retire_uncovered" in hits[0].message
    # the site-bracketed retire is not flagged
    assert all("uc_retire_covered" not in f.message
               for f in coverage.findings)


def test_unanchored_site_detected(result):
    stub = SimpleNamespace(all_sites=lambda: frozenset({
        "persist.before_flush", "persist.before_root_swap",
        "migrate.pre_retire", "ghost.site.nobody.declares",
    }))
    rep = prove_coverage(result, sites_module=stub)
    ghosts = [f for f in rep.findings if f.rule == "unanchored-site"]
    assert [f.message.split("'")[1] for f in ghosts] \
        == ["ghost.site.nobody.declares"]
    assert rep.unanchored_sites == ["ghost.site.nobody.declares"]


def test_unregistered_site_does_not_cover(result):
    # a declared site the registry does not know cannot satisfy coverage
    stub = SimpleNamespace(all_sites=lambda: frozenset())
    rep = prove_coverage(result, sites_module=stub)
    assert all(not w.covered for w in rep.windows)


# ------------------------------------------------- the tree's own verdict

@pytest.fixture(scope="module")
def repo_result():
    return analyze_paths([Path(__file__).parents[2] / "src" / "repro"])


def test_real_tree_is_clean(repo_result):
    assert repo_result.findings == [], \
        "\n".join(f.describe() for f in repo_result.findings)


def test_real_tree_coverage_proven(repo_result):
    rep = prove_coverage(repo_result)
    assert rep.findings == [], \
        "\n".join(f.describe() for f in rep.findings)
    assert rep.uncovered == 0
    assert len(rep.windows) >= 3       # persist, migration, replication
    assert len(rep.retires) >= 2       # repartition apply + recovery
    assert rep.unanchored_sites == []


def test_real_tree_windows_name_their_sites(repo_result):
    rep = prove_coverage(repo_result)
    all_sites = set()
    for w in rep.windows:
        all_sites.update(w.sites)
    # the commit-point bracket sites must anchor the persist window
    assert "persist.before_root_swap" in all_sites
