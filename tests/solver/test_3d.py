"""3-D (true octree) end-to-end coverage for both workloads."""

import pytest

from repro.config import SolverConfig
from repro.octree import morton
from repro.octree.balance import is_balanced
from repro.octree.store import validate_tree
from repro.solver.fields import VOF, FieldView
from repro.solver.simulation import DropletSimulation
from repro.solver.wave import WaveConfig, WaveSimulation


def test_droplet_3d_on_pointer_octree(octree3d):
    cfg = SolverConfig(dim=3, min_level=2, max_level=3, dt=0.01)
    sim = DropletSimulation(octree3d, cfg)
    sim.run(6)
    validate_tree(octree3d)
    assert is_balanced(octree3d)
    # the jet column exists: liquid on the axis near the bottom
    fv = FieldView(octree3d)
    axis_leaf = octree3d.find_leaf_at((0.5, 0.5, 0.02))
    assert fv.get(axis_leaf, VOF) > 0.0
    corner_leaf = octree3d.find_leaf_at((0.95, 0.95, 0.95))
    assert fv.get(corner_leaf, VOF) == 0.0
    # interface cells got refined beyond the base level
    assert morton.level_of(axis_leaf, 3) >= morton.level_of(corner_leaf, 3)


def test_droplet_3d_on_pm_octree():
    from tests.core.conftest import PMRig

    rig = PMRig(dim=3, dram_octants=1 << 14, nvbm_octants=1 << 17)
    cfg = SolverConfig(dim=3, min_level=2, max_level=3, dt=0.01)
    sim = DropletSimulation(
        rig.tree, cfg, clock=rig.clock,
        persistence=lambda s: s.tree.persist(),
    )
    sim.run(4)
    rig.tree.check_invariants()
    validate_tree(rig.tree)
    sig = {loc: rig.tree.get_payload(loc) for loc in rig.tree.leaves()}
    rig.crash()
    t = rig.restore()
    assert {loc: t.get_payload(loc) for loc in t.leaves()} == sig


def test_wave_3d(octree3d):
    cfg = WaveConfig(dim=3, min_level=1, max_level=3,
                     epicenter=(0.5, 0.5, 0.5), dt=0.05)
    sim = WaveSimulation(octree3d, cfg)
    reports = sim.run(5)
    validate_tree(octree3d)
    assert is_balanced(octree3d)
    assert reports[-1].leaves > 8  # the shell got refined


def test_3d_volume_conservation(octree3d):
    """3-D VOF volume tracks the analytic liquid volume."""
    from repro.solver.advection import initialize_vof
    from repro.solver.geometry import DropletGeometry

    octree3d.refine_uniform(3)
    cfg = SolverConfig(dim=3)
    geo = DropletGeometry(cfg)
    t = 0.3
    initialize_vof(octree3d, geo, t=t)
    fv = FieldView(octree3d)
    measured = fv.total(VOF)
    # analytic column: roughly pi * R^2 * tip height
    import math

    expected = math.pi * cfg.nozzle_radius ** 2 * geo.tip(t)
    assert measured == pytest.approx(expected, rel=0.5)
    assert measured > 0
