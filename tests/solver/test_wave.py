"""The second AMR workload: expanding seismic-style wavefront."""

import math

import pytest

from repro.octree import morton
from repro.octree.balance import is_balanced
from repro.octree.store import validate_tree
from repro.solver.wave import WaveConfig, WaveField, WaveSimulation


def test_config_validation():
    with pytest.raises(ValueError):
        WaveConfig(dim=3, epicenter=(0.5, 0.5))
    with pytest.raises(ValueError):
        WaveConfig(speed=0.0)
    with pytest.raises(ValueError):
        WaveConfig(width=-1.0)


def test_field_pulse_shape():
    cfg = WaveConfig()
    field = WaveField(cfg)
    t = 0.5
    r_front = field.front_radius(t)
    on_front = (0.5 + r_front, 0.5)
    assert field.value(on_front, t) == pytest.approx(1.0)
    far = (0.5 + r_front + 10 * cfg.width, 0.5)
    assert field.value(far, t) < 1e-6
    behind = (0.5, 0.5)
    assert field.value(behind, t) < field.value(on_front, t)


def test_simulation_tracks_expanding_ring(quadtree):
    cfg = WaveConfig(dim=2, min_level=2, max_level=5, dt=0.02)
    sim = WaveSimulation(quadtree, cfg)
    sim.run(10)
    validate_tree(quadtree)
    assert is_balanced(quadtree)
    # fine cells hug the front
    front = sim.field.front_radius(sim.t)
    fine = [
        loc for loc in quadtree.leaves()
        if morton.level_of(loc, 2) == cfg.max_level
    ]
    assert fine
    for loc in fine:
        r = math.dist(morton.cell_center(loc, 2), cfg.epicenter)
        assert abs(r - front) < 0.25  # within the band (plus 2:1 halo)


def test_ring_grows_then_leaves_domain(quadtree):
    cfg = WaveConfig(dim=2, min_level=2, max_level=4, dt=0.05, speed=0.8)
    sim = WaveSimulation(quadtree, cfg)
    reports = sim.run(25)
    leaves = [r.leaves for r in reports]
    # mesh grows while the ring expands inside the domain...
    assert max(leaves[:12]) > leaves[0]
    # ...then shrinks back toward the base mesh once it exits
    assert leaves[-1] < max(leaves)


def test_sweep_writes_only_changing_cells(quadtree):
    cfg = WaveConfig(dim=2, min_level=2, max_level=4)
    sim = WaveSimulation(quadtree, cfg)
    sim.run(4)
    last = sim.history[-1]
    assert 0 < last.cells_written < last.leaves  # far field untouched


def test_wave_on_pm_octree_with_persistence():
    from tests.core.conftest import PMRig

    rig = PMRig(dram_octants=1 << 13, nvbm_octants=1 << 16)
    cfg = WaveConfig(dim=2, min_level=2, max_level=4)
    sim = WaveSimulation(
        rig.tree, cfg, clock=rig.clock,
        persistence=lambda s: s.tree.persist(),
    )
    assert len(rig.tree.features) == 1  # the wave's write-set feature
    sim.run(6)
    rig.tree.check_invariants()
    validate_tree(rig.tree)
    sig = {leaf: rig.tree.get_payload(leaf) for leaf in rig.tree.leaves()}
    rig.crash()
    t = rig.restore()
    assert {leaf: t.get_payload(leaf) for leaf in t.leaves()} == sig


def test_wave_feature_predicts_front(quadtree):
    cfg = WaveConfig(dim=2, min_level=2, max_level=4)
    sim = WaveSimulation(quadtree, cfg)
    sim.run(3)
    # the feature fires near the (next) front, not in the far field
    front = sim.field.front_radius(sim.t + cfg.dt)
    hot = [
        loc for loc in quadtree.leaves()
        if sim._next_step_feature(loc, quadtree.get_payload(loc))
    ]
    assert hot
    for loc in hot:
        r = math.dist(morton.cell_center(loc, 2), cfg.epicenter)
        assert abs(r - front) < 6 * cfg.width + 0.3


def test_dim_mismatch_rejected(octree3d):
    with pytest.raises(ValueError):
        WaveSimulation(octree3d, WaveConfig(dim=2))
