"""Differential equivalence battery: SoA kernels vs the scalar oracle.

The vectorized (``vectorized=True``) solver kernels must be *bit-identical*
to the per-octant scalar path — not approximately equal: same recovered
NVBM state after a crash, same device byte/line counters, same wear maps,
same simulated clock.  Any divergence means the SoA layer either computed
a different float or charged the memory device differently, both bugs.

Two scenarios (droplet ejection and the seismic wavefront), swept over the
epoch-pipeline depths ``max_inflight_epochs in {0, 1, 2}`` and over rank
counts ``P in {1, 2, 4}`` through the parallel runtime.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.sweep import _signature
from repro.config import (
    DRAM_SPEC,
    NVBM_SPEC,
    PMOctreeConfig,
    SolverConfig,
)
from repro.core.api import pm_create, pm_restore
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.failure import default_injector
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.parallel.runtime import Backend, RunConfig, run_parallel
from repro.solver.simulation import DropletSimulation
from repro.solver.wave import WaveConfig, WaveSimulation

SEED = 7


def _rig(max_inflight: int):
    default_injector().reset()
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 16)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 20)
    cfg = PMOctreeConfig(dram_capacity_octants=96, seed=SEED,
                         max_inflight_epochs=max_inflight)
    tree = pm_create(dram, nvbm, dim=2, config=cfg)
    return clock, dram, nvbm, cfg, tree


def _persistence(sim):
    sim.tree.persist()
    sim.tree.gc()


def _droplet(vectorized: bool, max_inflight: int, steps: int = 6):
    clock, dram, nvbm, cfg, tree = _rig(max_inflight)
    sim = DropletSimulation(
        tree, SolverConfig(dim=2, min_level=2, max_level=5, dt=0.01),
        clock=clock, persistence=_persistence, vectorized=vectorized,
    )
    sim.run(steps)
    tree.drain_persists()
    return clock, dram, nvbm, cfg, tree, sim


def _wave(vectorized: bool, max_inflight: int, steps: int = 6):
    clock, dram, nvbm, cfg, tree = _rig(max_inflight)
    sim = WaveSimulation(
        tree, WaveConfig(dim=2, min_level=2, max_level=5, dt=0.02),
        clock=clock, persistence=_persistence, vectorized=vectorized,
    )
    sim.run(steps)
    tree.drain_persists()
    return clock, dram, nvbm, cfg, tree, sim


def _observables(clock, dram, nvbm, cfg, tree, sim):
    """Everything both paths must agree on, bit for bit."""
    # crash both arenas and restore: the *recovered NVBM state* is the
    # durability contract the batch metering must not have perturbed
    dram.crash()
    nvbm.crash(np.random.default_rng(SEED))
    restored = pm_restore(dram, nvbm, dim=2, config=cfg)
    return {
        "clock_ns": clock.now_ns,
        "dram_stats": dataclasses.asdict(dram.device.stats),
        "nvbm_stats": dataclasses.asdict(nvbm.device.stats),
        "wear": nvbm.device._wear.tolist(),
        "history": sim.history,
        "recovered": _signature(restored),
    }


SCENARIOS = {"droplet": _droplet, "wave": _wave}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("max_inflight", [0, 1, 2])
def test_vectorized_matches_scalar(scenario, max_inflight):
    run = SCENARIOS[scenario]
    vec = _observables(*run(True, max_inflight))
    scalar = _observables(*run(False, max_inflight))
    assert vec["recovered"] == scalar["recovered"]
    assert vec["clock_ns"] == scalar["clock_ns"]
    assert vec["dram_stats"] == scalar["dram_stats"]
    assert vec["nvbm_stats"] == scalar["nvbm_stats"]
    assert vec["wear"] == scalar["wear"]
    assert vec["history"] == scalar["history"]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_live_state_matches_scalar(scenario):
    """Pre-crash (live) leaf payloads agree too, not just recovered ones."""
    run = SCENARIOS[scenario]
    tree_v = run(True, 1)[4]
    tree_s = run(False, 1)[4]
    assert _signature(tree_v) == _signature(tree_s)


@pytest.mark.parametrize("workload", ["droplet", "wave"])
@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_parallel_runtime_matches_scalar(workload, nranks):
    def run(vectorized):
        return run_parallel(RunConfig(
            backend=Backend.PM_OCTREE, nranks=nranks,
            target_elements=1e6 * nranks, steps=4,
            solver=SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01),
            workload=workload, vectorized=vectorized, seed=2017,
        ))
    vec = run(True)
    scalar = run(False)
    assert vec.makespan_s == scalar.makespan_s
    assert vec.nvbm_writes == scalar.nvbm_writes
    assert vec.evictions == scalar.evictions
    assert vec.merges == scalar.merges
    assert vec.persists == scalar.persists
    assert vec.step_reports == scalar.step_reports
