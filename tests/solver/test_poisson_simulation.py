"""Pressure solve + end-to-end simulation driver tests."""

import pytest

from repro.config import SolverConfig
from repro.nvbm.clock import SimClock
from repro.octree import morton
from repro.octree.balance import is_balanced
from repro.octree.store import validate_tree
from repro.solver.advection import initialize_vof
from repro.solver.fields import PRESSURE, VOF, FieldView
from repro.solver.geometry import DropletGeometry
from repro.solver.poisson import pressure_solve
from repro.solver.simulation import DropletSimulation


def test_pressure_solve_on_uniform_mesh(quadtree):
    quadtree.refine_uniform(4)
    cfg = SolverConfig(dim=2)
    initialize_vof(quadtree, DropletGeometry(cfg), t=0.3)
    diag = pressure_solve(quadtree)
    assert diag["n"] == 256
    assert diag["residual"] < 1e-6
    fv = FieldView(quadtree)
    # pressure is higher inside the liquid column than far away
    p_in = fv.get(quadtree.find_leaf_at((0.5, 0.1)), PRESSURE)
    p_out = fv.get(quadtree.find_leaf_at((0.95, 0.95)), PRESSURE)
    assert p_in > p_out


def test_pressure_solve_on_adaptive_mesh(quadtree):
    kids = quadtree.refine(morton.ROOT_LOC)
    quadtree.refine(kids[0])
    quadtree.refine(kids[3])
    cfg = SolverConfig(dim=2)
    initialize_vof(quadtree, DropletGeometry(cfg), t=0.2)
    diag = pressure_solve(quadtree)
    assert diag["residual"] < 1e-6
    # every leaf got a pressure value
    fv = FieldView(quadtree)
    for loc in quadtree.leaves():
        assert fv.get(loc, PRESSURE) == fv.get(loc, PRESSURE)  # not NaN


def test_pressure_solve_empty_ish(quadtree):
    diag = pressure_solve(quadtree)
    assert diag["n"] == 1


def _run_sim(steps=30, max_level=5, clock=None, tree=None, **cfg_kw):
    from repro.config import DRAM_SPEC
    from repro.nvbm.arena import MemoryArena
    from repro.nvbm.pointers import ARENA_DRAM
    from repro.octree.tree import PointerOctree

    clock = clock or SimClock()
    if tree is None:
        arena = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 17)
        tree = PointerOctree(arena, dim=2)
    cfg = SolverConfig(dim=2, min_level=2, max_level=max_level, dt=0.01, **cfg_kw)
    sim = DropletSimulation(tree, cfg, clock=clock)
    reports = sim.run(steps)
    return sim, reports


def test_simulation_tracks_interface():
    sim, reports = _run_sim(steps=25)
    assert reports[0].leaves > 16  # adapted beyond the base mesh
    validate_tree(sim.tree)
    assert is_balanced(sim.tree)
    # the mesh grows as the jet lengthens
    assert reports[-1].leaves > reports[0].leaves
    # volume tracks the analytic value
    fv = FieldView(sim.tree)
    assert fv.total(VOF) > 0


def test_simulation_produces_droplets():
    sim, reports = _run_sim(steps=70)
    assert reports[10].droplets == 1
    assert reports[-1].droplets >= 2  # pinch-off happened


def test_fine_cells_follow_interface():
    sim, _ = _run_sim(steps=20)
    geo = sim.geometry
    # every interface cell must have been driven to the max level...
    near_leaves = [
        loc for loc in sim.tree.leaves()
        if geo.near_interface(*morton.cell_bounds(loc, 2), sim.t)
    ]
    assert near_leaves
    at_max = sum(
        morton.level_of(loc, 2) == sim.config.max_level for loc in near_leaves
    )
    assert at_max / len(near_leaves) > 0.6
    # ...and far-field cells must stay coarse
    far = sim.tree.find_leaf_at((0.95, 0.95))
    assert morton.level_of(far, 2) <= sim.config.min_level + 1


def test_phase_breakdown_recorded():
    clock = SimClock()
    sim, _ = _run_sim(steps=10, clock=clock)
    for phase in ("construct", "refine", "solve"):
        assert clock.phase_ns(phase) > 0
    # balance may legitimately be 0 when the engine's own balancing already
    # satisfied 2:1 (then the explicit pass does no memory work)
    assert clock.phase_ns("balance") >= 0


def test_persistence_hook_called():
    calls = []
    from repro.config import DRAM_SPEC
    from repro.nvbm.arena import MemoryArena
    from repro.nvbm.pointers import ARENA_DRAM
    from repro.octree.tree import PointerOctree

    clock = SimClock()
    arena = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 17)
    tree = PointerOctree(arena, dim=2)
    cfg = SolverConfig(dim=2, min_level=2, max_level=4)
    sim = DropletSimulation(tree, cfg, clock=clock,
                            persistence=lambda s: calls.append(s.step_count))
    sim.run(5)
    assert calls == [1, 2, 3, 4, 5]
    assert clock.phase_ns("persist") >= 0


def test_simulation_on_pm_octree():
    """The same driver runs over PM-octree, registering features and
    persisting every step."""
    from tests.core.conftest import PMRig

    rig = PMRig(dram_octants=1 << 14, nvbm_octants=1 << 16)
    cfg = SolverConfig(dim=2, min_level=2, max_level=5)
    sim = DropletSimulation(
        rig.tree, cfg, clock=rig.clock,
        persistence=lambda s: s.tree.persist(),
    )
    assert len(rig.tree.features) == 1  # driver registered its write-set feature
    reports = sim.run(8)
    assert reports[-1].overlap_ratio is not None
    assert 0.0 < reports[-1].overlap_ratio <= 1.0
    rig.tree.check_invariants()
    validate_tree(rig.tree)
    # crash and recover mid-simulation
    sig = {leaf: rig.tree.get_payload(leaf) for leaf in rig.tree.leaves()}
    rig.crash()
    t = rig.restore()
    assert {leaf: t.get_payload(leaf) for leaf in t.leaves()} == sig


def test_simulation_rejects_dim_mismatch(quadtree):
    with pytest.raises(ValueError):
        DropletSimulation(quadtree, SolverConfig(dim=3))


def test_simulation_with_pressure():
    sim, _ = _run_sim(steps=4, max_level=4)
    sim.pressure_every = 2
    sim.step()
    sim.step()  # pressure solve ran here
    fv = FieldView(sim.tree)
    values = {fv.get(loc, PRESSURE) for loc in sim.tree.leaves()}
    assert len(values) > 1  # a non-trivial pressure field was written
