"""Field views, VOF transport, and droplet counting."""

import pytest

from repro.config import SolverConfig
from repro.octree import morton
from repro.solver.advection import advect_vof, initialize_vof
from repro.solver.fields import (
    PRESSURE,
    U,
    V,
    VOF,
    FieldView,
    count_droplets,
    liquid_leaves,
)
from repro.solver.geometry import DropletGeometry


@pytest.fixture
def cfg():
    return SolverConfig(dim=2, min_level=2, max_level=5, dt=0.01)


@pytest.fixture
def geo(cfg):
    return DropletGeometry(cfg)


@pytest.fixture
def tree(quadtree):
    quadtree.refine_uniform(4)
    return quadtree


def test_field_view_set_get(tree):
    fv = FieldView(tree)
    loc = morton.loc_from_coords(4, (3, 3), 2)
    fv.set(loc, VOF, 0.5)
    fv.set(loc, PRESSURE, 2.0)
    assert fv.get(loc, VOF) == 0.5
    assert fv.get(loc, PRESSURE) == 2.0
    # other slots untouched
    assert fv.get(loc, U) == 0.0


def test_set_many_single_rmw(tree, clock):
    fv = FieldView(tree)
    loc = morton.loc_from_coords(4, (1, 1), 2)
    fv.set_many(loc, {VOF: 1.0, U: 2.0, V: 3.0})
    assert tree.get_payload(loc) == (1.0, 0.0, 2.0, 3.0)


def test_initialize_vof(tree, geo):
    initialize_vof(tree, geo, t=0.1)
    fv = FieldView(tree)
    nozzle_leaf = tree.find_leaf_at((0.5, 0.03))
    assert fv.get(nozzle_leaf, VOF) > 0.0
    far_leaf = tree.find_leaf_at((0.9, 0.9))
    assert fv.get(far_leaf, VOF) == 0.0
    assert fv.get(nozzle_leaf, V) == geo.config.jet_speed


def test_weighted_total_is_liquid_volume(tree, geo):
    initialize_vof(tree, geo, t=0.2)
    fv = FieldView(tree)
    vol = fv.total(VOF)
    # analytic: column of radius ~<= R0 and height tip -> area < 2*R0*tip
    assert 0.0 < vol < 2 * geo.config.nozzle_radius * geo.tip(0.2) * 1.5


def test_advect_moves_liquid_up(tree, geo, cfg):
    initialize_vof(tree, geo, t=0.2)
    fv = FieldView(tree)
    probe = tree.find_leaf_at((0.5, geo.tip(0.2) + 0.03))
    before = fv.get(probe, VOF)
    for k in range(1, 8):
        advect_vof(tree, geo, cfg, 0.2 + k * cfg.dt)
    after = fv.get(probe, VOF)
    assert before == 0.0
    assert after > 0.0  # the front reached the probe cell


def test_advect_counts_accesses(tree, geo, cfg):
    initialize_vof(tree, geo, t=0.2)
    counters = advect_vof(tree, geo, cfg, 0.21)
    n = tree.num_leaves()
    assert counters["reads"] >= n  # each leaf + most upwind neighbors
    # every leaf is either written or skipped as unchanged
    assert counters["writes"] + counters["skipped"] == n
    assert counters["writes"] > 0
    # the quiescent far field must be skipped, not rewritten (this is what
    # gives PM-octree its high step-to-step overlap ratio)
    assert counters["skipped"] > n / 2


def test_advect_validates_sharpen(tree, geo, cfg):
    with pytest.raises(ValueError):
        advect_vof(tree, geo, cfg, 0.1, sharpen=1.5)


def test_vof_stays_in_unit_interval(tree, geo, cfg):
    initialize_vof(tree, geo, t=0.1)
    fv = FieldView(tree)
    for k in range(1, 10):
        advect_vof(tree, geo, cfg, 0.1 + k * cfg.dt, sharpen=0.5)
    for loc in tree.leaves():
        assert -1e-9 <= fv.get(loc, VOF) <= 1.0 + 1e-9


def test_liquid_leaves_and_droplet_count_column(tree, geo):
    initialize_vof(tree, geo, t=0.3)
    assert len(liquid_leaves(tree)) > 0
    assert count_droplets(tree) == 1  # attached column = one component


def test_droplet_count_after_breakup(tree, geo, cfg):
    t = cfg.breakup_time + 0.25
    initialize_vof(tree, geo, t=t)
    assert count_droplets(tree) >= 2  # column + at least one free droplet


def test_droplet_count_empty(quadtree):
    assert count_droplets(quadtree) == 0
