"""Droplet-ejection geometry tests."""

import numpy as np
import pytest

from repro.config import SolverConfig
from repro.solver.geometry import DropletGeometry


@pytest.fixture
def geo():
    return DropletGeometry(SolverConfig(dim=2))


def test_tip_advances_and_caps(geo):
    assert geo.tip(0.0) == pytest.approx(0.15)
    assert geo.tip(0.1) > geo.tip(0.0)
    assert geo.tip(100.0) == 0.95


def test_amplitude_grows_to_config_max(geo):
    cfg = geo.config
    assert geo.amplitude(0.0) == 0.0
    assert geo.amplitude(cfg.breakup_time) == pytest.approx(
        cfg.perturbation_amplitude
    )
    assert geo.amplitude(10 * cfg.breakup_time) == pytest.approx(
        cfg.perturbation_amplitude
    )


def test_column_radius_bounded(geo):
    cfg = geo.config
    for t in (0.0, 0.2, 0.5):
        for y in np.linspace(0, 1, 31):
            r = geo.column_radius(float(y), t)
            assert 0.0 < r <= cfg.nozzle_radius + 1e-12


def test_axis_liquid_column(geo):
    t = 0.2
    assert geo.is_liquid((0.5, 0.05), t)  # on the axis, below the tip
    assert not geo.is_liquid((0.5, geo.tip(t) + 0.05), t)  # above the tip
    assert not geo.is_liquid((0.9, 0.05), t)  # far off-axis


def test_no_droplets_before_breakup(geo):
    assert geo.droplets(0.1) == []
    assert not geo.has_broken(0.1)


def test_droplets_after_breakup(geo):
    t = geo.config.breakup_time + 0.2
    assert geo.has_broken(t)
    drops = geo.droplets(t)
    assert len(drops) >= 1
    for d in drops:
        assert d.y > geo.pinch_height(t)
        assert 0 < d.radius < 0.5 * geo.config.perturbation_wavelength
        # droplet interior is liquid, just outside is not
        assert geo.is_liquid((0.5, d.y), t)
        assert not geo.is_liquid((0.5 + d.radius + 0.02, d.y), t)


def test_droplets_move_with_jet(geo):
    t1 = geo.config.breakup_time + 0.1
    t2 = t1 + 0.05
    d1 = geo.droplets(t1)[0]
    d2 = geo.droplets(t2)[0]
    assert d2.y > d1.y


def test_vof_of_cell_extremes(geo):
    t = 0.2
    # fully liquid cell deep inside the column near the nozzle
    assert geo.vof_of_cell((0.49, 0.01), (0.51, 0.03), t) == 1.0
    # fully gas cell far away
    assert geo.vof_of_cell((0.8, 0.8), (0.9, 0.9), t) == 0.0
    # mixed cell straddling the column wall
    frac = geo.vof_of_cell((0.5, 0.01), (0.6, 0.06), t, samples=6)
    assert 0.0 < frac < 1.0


def test_liquid_mask_matches_scalar(geo):
    t = 0.7  # after breakup: both column and droplets present
    rng = np.random.default_rng(1)
    pts = rng.random((200, 2))
    mask = geo.liquid_mask(pts, t)
    for p, m in zip(pts, mask):
        assert geo.is_liquid(tuple(p), t) == bool(m)


def test_near_interface(geo):
    t = 0.2
    assert geo.near_interface((0.5, 0.05), (0.6, 0.1), t)
    assert not geo.near_interface((0.85, 0.85), (0.95, 0.95), t)


def test_velocity_field(geo):
    t = 0.2
    v_liquid = geo.velocity((0.5, 0.05), t)
    v_gas = geo.velocity((0.9, 0.9), t)
    assert v_liquid[-1] == geo.config.jet_speed
    assert 0 < v_gas[-1] < v_liquid[-1]


def test_3d_geometry():
    geo = DropletGeometry(SolverConfig(dim=3))
    t = 0.2
    assert geo.is_liquid((0.5, 0.5, 0.05), t)
    assert not geo.is_liquid((0.9, 0.5, 0.05), t)
    frac = geo.vof_of_cell((0.45, 0.45, 0.0), (0.55, 0.55, 0.1), t, samples=4)
    assert 0.0 < frac <= 1.0
    t2 = geo.config.breakup_time + 0.2
    assert len(geo.droplets(t2)) >= 1


def test_volume_roughly_conserved_through_breakup(geo):
    """Liquid volume just before and just after breakup should be close
    (the droplet radius comes from per-wavelength volume conservation)."""
    cfg = geo.config

    def volume(t):
        pts = geo._sample_grid((0.0, 0.0), (1.0, 1.0), 200)
        return float(geo.liquid_mask(pts, t).mean())

    before = volume(cfg.breakup_time - 0.01)
    after = volume(cfg.breakup_time + 0.01)
    assert after == pytest.approx(before, rel=0.35)
