"""Seeded property tests for the SoA batch layer.

Three families:

* the vectorised locational-code arithmetic in :mod:`repro.solver.soa` is
  integer-exact against the scalar :mod:`repro.octree.morton` loops, and
  ``LeafBatch.find_enclosing`` replicates the scalar
  ``leaf_neighbor``/``is_leaf`` probe on random adaptive meshes;
* gather/scatter round-trips: a batch write-back of gathered payloads is a
  no-op on values, and random payloads written through the batch path read
  back exactly;
* metering conservation: a batch of writes charges the memory device
  *exactly* the sum of the per-element ``lines_spanned`` charges — same
  counters, same wear, same simulated clock as the scalar loop.
"""

import random

import numpy as np
import pytest

from repro.config import DRAM_SPEC, NVBM_SPEC, PMOctreeConfig
from repro.core.api import pm_create
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.device import lines_spanned
from repro.nvbm.failure import default_injector
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree import morton
from repro.octree.neighbors import leaf_neighbor
from repro.octree.tree import PointerOctree
from repro.solver import soa

MAX_LEVEL = 5


def _random_tree(seed: int, dim: int = 2, ops: int = 40):
    """Random refine/coarsen sequence on a pointer octree."""
    rng = random.Random(seed)
    clock = SimClock()
    tree = PointerOctree(
        MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14), dim=dim
    )
    leaves = {morton.ROOT_LOC}
    for _ in range(ops):
        if rng.random() < 0.7:
            cands = sorted(
                leaf for leaf in leaves
                if morton.level_of(leaf, dim) < MAX_LEVEL
            )
            if not cands:
                continue
            loc = rng.choice(cands)
            tree.refine(loc)
            leaves.discard(loc)
            leaves.update(morton.children_of(loc, dim))
        else:
            parents = sorted({
                morton.parent_of(leaf, dim)
                for leaf in leaves if leaf != morton.ROOT_LOC
            })
            parents = [
                p for p in parents
                if all(c in leaves for c in morton.children_of(p, dim))
            ]
            if not parents:
                continue
            loc = rng.choice(parents)
            tree.coarsen(loc)
            for c in morton.children_of(loc, dim):
                leaves.discard(c)
            leaves.add(loc)
    for i, loc in enumerate(sorted(leaves)):
        tree.set_payload(loc, (rng.random(), float(i), rng.random(), 0.25))
    return tree


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("dim", [2, 3])
def test_code_arithmetic_matches_morton(seed, dim):
    tree = _random_tree(seed, dim=dim)
    locs = np.array(sorted(tree.leaves()), dtype=np.int64)
    levels = soa.levels_of_codes(locs, dim)
    coords = soa.coords_of_codes(locs, levels, dim)
    max_level = int(levels.max())
    keys = soa.zorder_keys(locs, levels, dim, max_level)
    h, mins, maxs, centers = soa.cell_geometry(coords, levels)
    rebuilt = soa.locs_from_coords(levels, coords, dim)
    for i, loc in enumerate(int(v) for v in locs):
        assert int(levels[i]) == morton.level_of(loc, dim)
        assert tuple(int(c) for c in coords[i]) == morton.coords_of(loc, dim)
        assert int(keys[i]) == morton.zorder_key(loc, dim, max_level)
        assert int(rebuilt[i]) == loc
        lo, hi = morton.cell_bounds(loc, dim)
        assert tuple(mins[i]) == lo
        assert tuple(maxs[i]) == hi
        assert tuple(centers[i]) == morton.cell_center(loc, dim)
        assert float(h[i]) == morton.cell_size(loc, dim)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_find_enclosing_matches_leaf_neighbor(seed):
    """The batched neighbor probe agrees with the scalar walk for every
    leaf, axis and direction (hits AND misses)."""
    dim = 2
    tree = _random_tree(seed, dim=dim)
    batch = soa.gather(tree, tree.leaves())
    index_of = {loc: i for i, loc in enumerate(batch.loc_list)}
    for axis in range(dim):
        for direction in (-1, 1):
            ncoords = batch.coords.copy()
            ncoords[:, axis] += direction
            span = np.int64(1) << batch.levels
            in_range = (ncoords[:, axis] >= 0) & (ncoords[:, axis] < span)
            ncodes = soa.locs_from_coords(
                batch.levels, np.clip(ncoords, 0, None), dim)
            nidx = batch.find_enclosing(ncodes, batch.levels)
            nidx = np.where(in_range, nidx, np.int64(-1))
            for i, loc in enumerate(batch.loc_list):
                nb = leaf_neighbor(tree, loc, axis, direction)
                scalar_hit = nb is not None and tree.is_leaf(nb)
                if scalar_hit:
                    assert int(nidx[i]) == index_of[nb]
                else:
                    assert int(nidx[i]) == -1


def _pm_rig(seed: int = 11):
    default_injector().reset()
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 16)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 20)
    cfg = PMOctreeConfig(dram_capacity_octants=24, seed=seed,
                         max_inflight_epochs=0)
    tree = pm_create(dram, nvbm, dim=2, config=cfg)
    return clock, dram, nvbm, tree


def _grow(tree, seed: int):
    """Refine a few random leaves (some evicted to NVBM by the tight
    budget), persist once so COW paths are live, and seed payloads."""
    rng = random.Random(seed)
    for _ in range(3):
        cands = sorted(
            leaf for leaf in tree.leaves()
            if morton.level_of(leaf, 2) < MAX_LEVEL
        )
        for loc in rng.sample(cands, min(4, len(cands))):
            if tree.is_leaf(loc):
                tree.refine(loc)
    for i, loc in enumerate(sorted(tree.leaves())):
        tree.set_payload(loc, (rng.random(), float(i), 0.0, 1.0))
    tree.persist()
    tree.drain_persists()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_gather_scatter_round_trip(seed):
    clock, dram, nvbm, tree = _pm_rig(seed)
    _grow(tree, seed)
    batch = soa.gather(tree, tree.leaves())
    # write back exactly what was read: values must be unchanged
    tree.batch_set_payloads(
        [(loc, tuple(batch.payloads[i]))
         for i, loc in enumerate(batch.loc_list)])
    again = soa.gather(tree, tree.leaves())
    assert again.loc_list == batch.loc_list
    assert np.array_equal(again.payloads, batch.payloads)
    # fresh random payloads survive a batch write -> batch read round trip
    rng = np.random.default_rng(seed)
    fresh = rng.random((len(batch), 4))
    tree.batch_set_payloads(
        [(loc, tuple(fresh[i])) for i, loc in enumerate(batch.loc_list)])
    assert np.array_equal(
        soa.gather(tree, tree.leaves()).payloads, fresh)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_metering_equals_scalar_metering(seed):
    """Twin rigs, same logical writes: the batch path's single aggregated
    device charge equals the scalar loop's per-element charges in every
    counter, in wear, and on the simulated clock."""
    rigs = {}
    for kind in ("batch", "scalar"):
        clock, dram, nvbm, tree = _pm_rig(seed)
        _grow(tree, seed)
        locs = sorted(tree.leaves())
        vals = np.random.default_rng(seed + 99).random((len(locs), 4))
        items = [(loc, tuple(vals[i])) for i, loc in enumerate(locs)]
        if kind == "batch":
            tree.batch_set_payloads(items)
            tree.batch_set_fields(
                [(loc, float(vals[i][1])) for i, loc in enumerate(locs)], 1)
            tree.batch_read_payloads(locs)
            tree.batch_read_fields(locs, 0)
        else:
            for loc, payload in items:
                tree.set_payload(loc, payload)
            for i, loc in enumerate(locs):
                tree.set_field(loc, 1, float(vals[i][1]))
            for loc in locs:
                tree.get_payload(loc)
            for loc in locs:
                tree.get_field(loc, 0)
        rigs[kind] = (clock, dram, nvbm, tree)
    cb, db, nb, tb = rigs["batch"]
    cs, ds, ns, ts = rigs["scalar"]
    assert db.device.stats == ds.device.stats
    assert nb.device.stats == ns.device.stats
    assert np.array_equal(nb.device._wear, ns.device._wear)
    assert cb.now_ns == cs.now_ns


def test_batch_write_charge_is_sum_of_lines_spanned():
    """The aggregate charge is arithmetically the per-element sum: a whole
    payload spans ``lines_spanned(16, 32)`` lines, a slot
    ``lines_spanned(16 + 8*slot, 8)``.  Everything is kept DRAM-resident
    (generous budget, no persist) so the payload stores are the *only*
    device traffic — no COW or eviction side-writes to untangle.
    """
    default_injector().reset()
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 16)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 20)
    tree = pm_create(dram, nvbm, dim=2,
                     config=PMOctreeConfig(dram_capacity_octants=1 << 16))
    for loc in sorted(tree.leaves()):
        tree.refine(loc)
    locs = sorted(tree.leaves())
    stats = dram.device.stats

    before_lines, before_writes = stats.lines_written, stats.writes
    tree.batch_set_payloads(
        [(loc, (0.5, 1.0, 2.0, 3.0)) for loc in locs])
    assert stats.lines_written - before_lines \
        == len(locs) * lines_spanned(16, 32)
    assert stats.writes - before_writes == len(locs)

    before_lines, before_writes = stats.lines_written, stats.writes
    tree.batch_set_fields([(loc, 7.0) for loc in locs], 1)
    assert stats.lines_written - before_lines \
        == len(locs) * lines_spanned(16 + 8 * 1, 8)
    assert stats.writes - before_writes == len(locs)
