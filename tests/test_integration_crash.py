"""End-to-end crash/replay integration: the workflow §3.4 promises.

A simulation crashes mid-run (at arbitrary injected points), the node
reboots, `pm_restore` brings back the last persisted step, and the
application *replays* from there.  Because the workload is deterministic,
the final state must be bit-identical to an uninterrupted reference run —
the strongest end-to-end statement the recovery path can make.
"""

import pytest

from repro.config import SolverConfig
from repro.core.api import pm_restore
from repro.errors import SimulatedCrash
from repro.octree.store import validate_tree
from repro.solver.simulation import DropletSimulation
from tests.core.conftest import PMRig

SOLVER = SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)
TOTAL_STEPS = 14


def _signature(tree):
    return {loc: tree.get_payload(loc) for loc in tree.leaves()}


def _reference_run():
    rig = PMRig(dram_octants=1 << 13, nvbm_octants=1 << 16)
    sim = DropletSimulation(rig.tree, SOLVER, clock=rig.clock,
                            persistence=lambda s: s.tree.persist())
    sim.run(TOTAL_STEPS)
    return _signature(rig.tree)


@pytest.fixture(scope="module")
def reference():
    return _reference_run()


@pytest.mark.parametrize("crash_step,site", [
    (3, "persist.before_flush"),
    (7, "persist.before_root_swap"),
    (10, "merge.octant"),
    (13, "persist.begin"),
])
def test_crash_replay_reaches_reference_state(reference, crash_step, site):
    rig = PMRig(dram_octants=1 << 13, nvbm_octants=1 << 16)
    sim = DropletSimulation(rig.tree, SOLVER, clock=rig.clock,
                            persistence=lambda s: s.tree.persist())
    sim.construct()

    step = 0
    crashed = False
    while step < TOTAL_STEPS:
        if step + 1 == crash_step and not crashed:
            rig.injector.reset_hits()
            rig.injector.arm(site)
        try:
            sim.step()
            step += 1
        except SimulatedCrash:
            crashed = True
            # power loss + reboot on the same node
            rig.crash(seed=crash_step)
            rig.injector.disarm()
            tree = pm_restore(rig.dram, rig.nvbm, dim=2,
                              injector=rig.injector)
            tree.gc()
            # the application resumes from the last persisted step
            sim = DropletSimulation(tree, SOLVER, clock=rig.clock,
                                    persistence=lambda s: s.tree.persist())
            sim.step_count = step  # steps [1..step] are safely persisted
            sim.t = step * SOLVER.dt
    assert crashed
    assert _signature(sim.tree) == reference
    validate_tree(sim.tree)
    sim.tree.check_invariants()


def test_double_crash_replay(reference):
    """Two crashes in one run, including a crash during the replay itself."""
    rig = PMRig(dram_octants=1 << 13, nvbm_octants=1 << 16)
    sim = DropletSimulation(rig.tree, SOLVER, clock=rig.clock,
                            persistence=lambda s: s.tree.persist())
    sim.construct()
    crash_plan = {5: "persist.before_flush", 6: "merge.octant"}
    step = 0
    crashes = 0
    while step < TOTAL_STEPS:
        plan_site = crash_plan.pop(step + 1, None)
        if plan_site is not None:
            rig.injector.reset_hits()
            rig.injector.arm(plan_site)
        try:
            sim.step()
            step += 1
        except SimulatedCrash:
            crashes += 1
            rig.crash(seed=step + crashes)
            rig.injector.disarm()
            tree = pm_restore(rig.dram, rig.nvbm, dim=2,
                              injector=rig.injector)
            sim = DropletSimulation(tree, SOLVER, clock=rig.clock,
                                    persistence=lambda s: s.tree.persist())
            sim.step_count = step
            sim.t = step * SOLVER.dt
    assert crashes == 2
    assert _signature(sim.tree) == reference
