"""Block device: cost model, durability, bounds."""

import pytest

from repro.config import DISK_SPEC, NVBM_FS_SPEC
from repro.errors import StorageError
from repro.nvbm.clock import Category, SimClock
from repro.storage.block import BlockDevice


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def disk(clock):
    return BlockDevice(DISK_SPEC, clock, capacity_pages=128)


def test_write_read_roundtrip(disk):
    pid = disk.alloc_page()
    disk.write_page(pid, b"hello")
    assert disk.read_page(pid) == b"hello"


def test_io_charged_to_clock(clock, disk):
    pid = disk.alloc_page()
    disk.write_page(pid, b"x" * 4096)
    t = clock.category_ns(Category.IO)
    # at least the 5 ms write latency
    assert t >= 5_000_000
    disk.read_page(pid)
    assert clock.category_ns(Category.IO) > t


def test_disk_much_slower_than_nvbm_fs(clock):
    disk = BlockDevice(DISK_SPEC, clock)
    p = disk.alloc_page()
    disk.write_page(p, b"a")
    disk_t = clock.now_ns

    clock2 = SimClock()
    nv = BlockDevice(NVBM_FS_SPEC, clock2)
    p2 = nv.alloc_page()
    nv.write_page(p2, b"a")
    # 4-5 orders of magnitude apart, per §2
    assert disk_t / clock2.now_ns > 1e2


def test_oversize_write_rejected(disk):
    pid = disk.alloc_page()
    with pytest.raises(StorageError):
        disk.write_page(pid, b"x" * 5000)


def test_unallocated_page_rejected(disk):
    with pytest.raises(StorageError):
        disk.write_page(3, b"x")
    with pytest.raises(StorageError):
        disk.read_page(0)


def test_capacity_exhaustion(clock):
    dev = BlockDevice(DISK_SPEC, clock, capacity_pages=2)
    dev.alloc_page()
    dev.alloc_page()
    with pytest.raises(StorageError):
        dev.alloc_page()


def test_crash_is_noop(disk):
    pid = disk.alloc_page()
    disk.write_page(pid, b"durable")
    disk.crash()
    assert disk.read_page(pid) == b"durable"


def test_stats(disk):
    pid = disk.alloc_page()
    disk.write_page(pid, b"a")
    disk.write_page(pid, b"b")
    disk.read_page(pid)
    assert disk.stats.page_writes == 2
    assert disk.stats.page_reads == 1
    assert disk.bytes_used() == DISK_SPEC.page_size
