"""B-tree: correctness under bulk loads, splits, tombstones; cost scaling."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BlockDeviceSpec
from repro.nvbm.clock import SimClock
from repro.storage.block import BlockDevice
from repro.storage.btree import BTree


def _btree(min_degree=None, page_size=4096):
    spec = BlockDeviceSpec(
        name="t", page_size=page_size, read_latency_us=1.0,
        write_latency_us=1.0, bandwidth_gbps=8.0,
    )
    dev = BlockDevice(spec, SimClock(), capacity_pages=1 << 16)
    return BTree(dev, min_degree=min_degree)


def test_empty_tree():
    bt = _btree()
    assert bt.get(1) is None
    assert len(bt) == 0
    assert list(bt.items()) == []
    assert bt.height() == 1


def test_put_get_single():
    bt = _btree()
    bt.put(5, 55)
    assert bt.get(5) == 55
    assert 5 in bt
    assert 6 not in bt


def test_overwrite():
    bt = _btree()
    bt.put(1, 10)
    bt.put(1, 11)
    assert bt.get(1) == 11
    assert len(bt) == 1


def test_many_inserts_force_splits():
    bt = _btree(min_degree=2)  # tiny nodes -> deep tree
    n = 500
    keys = list(range(n))
    random.Random(7).shuffle(keys)
    for k in keys:
        bt.put(k, k * 2)
    assert len(bt) == n
    assert bt.height() > 2
    for k in range(n):
        assert bt.get(k) == k * 2


def test_items_sorted():
    bt = _btree(min_degree=2)
    keys = [9, 3, 7, 1, 5, 8, 2, 6, 4, 0]
    for k in keys:
        bt.put(k, -k)
    assert [k for k, _ in bt.items()] == sorted(keys)


def test_range_query():
    bt = _btree(min_degree=2)
    for k in range(100):
        bt.put(k, k)
    got = [k for k, _ in bt.range(25, 40)]
    assert got == list(range(25, 41))


def test_tombstone_delete():
    bt = _btree(min_degree=2)
    for k in range(20):
        bt.put(k, k)
    assert bt.delete(10)
    assert bt.get(10) is None
    assert 10 not in bt
    assert len(bt) == 19
    assert not bt.delete(10)  # already dead
    assert not bt.delete(999)  # never existed
    assert [k for k, _ in bt.items()] == [k for k in range(20) if k != 10]


def test_reinsert_after_delete():
    bt = _btree(min_degree=2)
    bt.put(1, 10)
    bt.delete(1)
    bt.put(1, 20)
    assert bt.get(1) == 20
    assert len(bt) == 1


def test_tombstone_value_reserved():
    from repro.storage.btree import TOMBSTONE

    bt = _btree()
    with pytest.raises(ValueError):
        bt.put(1, TOMBSTONE)


def test_lookup_cost_grows_with_depth():
    """Each get() pays page reads proportional to tree height."""
    bt = _btree(min_degree=2)
    for k in range(300):
        bt.put(k, k)
    before = bt.device.stats.page_reads
    bt.get(150)
    reads = bt.device.stats.page_reads - before
    assert reads == bt.height()


def test_large_degree_from_page_size():
    bt = _btree(page_size=4096)
    # default degree should pack ~hundred keys per node
    assert bt.t >= 50
    for k in range(1000):
        bt.put(k, k)
    assert bt.height() <= 2


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10_000), max_size=150),
    dels=st.lists(st.integers(min_value=0, max_value=10_000), max_size=50),
)
def test_model_based_property(keys, dels):
    """B-tree behaves like a dict under puts and tombstone deletes."""
    bt = _btree(min_degree=2)
    model = {}
    for k in keys:
        bt.put(k, k + 1)
        model[k] = k + 1
    for k in dels:
        assert bt.delete(k) == (k in model)
        model.pop(k, None)
    assert len(bt) == len(model)
    assert dict(bt.items()) == model
    for k in list(model)[:20]:
        assert bt.get(k) == model[k]
