"""Filesystem tests: append/read semantics across page boundaries."""

import pytest

from repro.config import NVBM_FS_SPEC
from repro.errors import StorageError
from repro.nvbm.clock import SimClock
from repro.storage.block import BlockDevice
from repro.storage.filesystem import SimFileSystem


@pytest.fixture
def fs():
    return SimFileSystem(BlockDevice(NVBM_FS_SPEC, SimClock()))


def test_create_write_read(fs):
    f = fs.create("snapshot.gfs")
    f.append(b"abc")
    assert f.read_all() == b"abc"


def test_multi_page_file(fs):
    f = fs.create("big")
    blob = bytes(range(256)) * 64  # 16 KiB = 4 pages
    f.append(blob)
    assert f.read_all() == blob
    assert len(f.pages) == 4


def test_append_across_partial_page(fs):
    f = fs.create("log")
    f.append(b"a" * 100)
    f.append(b"b" * 5000)
    data = f.read_all()
    assert data == b"a" * 100 + b"b" * 5000
    assert f.length == 5100


def test_many_small_appends(fs):
    f = fs.create("steps")
    for i in range(50):
        f.append(f"record-{i};".encode())
    data = f.read_all().decode()
    assert data.startswith("record-0;")
    assert data.endswith("record-49;")


def test_open_missing_raises(fs):
    with pytest.raises(StorageError):
        fs.open("ghost")


def test_create_no_overwrite(fs):
    fs.create("x")
    with pytest.raises(StorageError):
        fs.create("x", overwrite=False)


def test_overwrite_truncates(fs):
    f = fs.create("x")
    f.append(b"old-data")
    f2 = fs.create("x")
    assert f2.read_all() == b""


def test_delete_and_listdir(fs):
    fs.create("a")
    fs.create("b")
    assert fs.listdir() == ["a", "b"]
    fs.delete("a")
    assert not fs.exists("a")
    assert fs.listdir() == ["b"]
    with pytest.raises(StorageError):
        fs.delete("a")


def test_file_survives_crash(fs):
    f = fs.create("checkpoint")
    f.append(b"state")
    fs.device.crash()
    assert fs.open("checkpoint").read_all() == b"state"
