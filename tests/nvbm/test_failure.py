"""Failure injector tests."""

import pytest

from repro.errors import SimulatedCrash
from repro.nvbm.failure import CrashPlan, FailureInjector


def test_disarmed_sites_are_free():
    inj = FailureInjector()
    for _ in range(10):
        inj.site("merge.mid")
    assert inj.hits["merge.mid"] == 10
    assert inj.fired == []


def test_fires_at_nth_hit():
    inj = FailureInjector()
    inj.arm("persist.before_root_swap", at_hit=3)
    inj.site("persist.before_root_swap")
    inj.site("persist.before_root_swap")
    with pytest.raises(SimulatedCrash) as exc:
        inj.site("persist.before_root_swap")
    assert exc.value.point == "persist.before_root_swap"
    # plan is consumed: further hits are safe
    inj.site("persist.before_root_swap")
    assert inj.fired == ["persist.before_root_swap"]


def test_disarm():
    inj = FailureInjector()
    inj.arm("a")
    inj.arm("b")
    inj.disarm("a")
    inj.site("a")
    assert inj.armed_sites == ["b"]
    inj.disarm()
    inj.site("b")
    assert inj.fired == []


def test_plan_validates_hit_count():
    with pytest.raises(ValueError):
        CrashPlan("x", at_hit=0)


def test_reset_hits():
    inj = FailureInjector()
    inj.site("s")
    inj.reset_hits()
    assert inj.hits == {}
