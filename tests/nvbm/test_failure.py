"""Failure injector tests."""

import warnings

import pytest

from repro.errors import SimulatedCrash, UnknownCrashSiteError
from repro.nvbm import sites
from repro.nvbm.failure import (
    CrashPlan,
    FailureInjector,
    UnknownCrashSiteWarning,
)


def test_disarmed_sites_are_free():
    inj = FailureInjector()
    for _ in range(10):
        inj.site("merge.mid")
    assert inj.hits["merge.mid"] == 10
    assert inj.fired == []


def test_fires_at_nth_hit():
    inj = FailureInjector()
    inj.arm("persist.before_root_swap", at_hit=3)
    inj.site("persist.before_root_swap")
    inj.site("persist.before_root_swap")
    with pytest.raises(SimulatedCrash) as exc:
        inj.site("persist.before_root_swap")
    assert exc.value.point == "persist.before_root_swap"
    # plan is consumed: further hits are safe
    inj.site("persist.before_root_swap")
    assert inj.fired == ["persist.before_root_swap"]


def test_disarm():
    inj = FailureInjector()
    a, b = sites.PERSIST_BEGIN, sites.EVICT_BEGIN
    inj.arm(a)
    inj.arm(b)
    inj.disarm(a)
    inj.site(a)
    assert inj.armed_sites == [b]
    inj.disarm()
    inj.site(b)
    assert inj.fired == []


def test_arm_unknown_site_raises_under_pytest():
    # pytest sets PYTEST_CURRENT_TEST, so strict mode is the default here:
    # a typo'd site name fails loudly instead of silently never firing
    inj = FailureInjector()
    with pytest.raises(UnknownCrashSiteError, match="presist.begin"):
        inj.arm("presist.begin")
    assert inj.armed_sites == []  # nothing was armed
    # registered names arm silently
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        inj.arm(sites.PERSIST_BEGIN)


def test_arm_unknown_site_warns_when_not_strict(monkeypatch):
    # library consumers outside pytest/analyze keep warn-only behaviour
    monkeypatch.setenv("REPRO_STRICT_SITES", "0")
    inj = FailureInjector()
    with pytest.warns(UnknownCrashSiteWarning, match="presist.begin"):
        inj.arm("presist.begin")  # typo'd name: armed but can never fire
    assert inj.armed_sites == ["presist.begin"]


def test_strict_sites_env_overrides(monkeypatch):
    monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
    monkeypatch.setenv("REPRO_STRICT_SITES", "1")
    inj = FailureInjector()
    with pytest.raises(UnknownCrashSiteError):
        inj.arm("no.such.site")


def test_registered_site_after_register_does_not_warn():
    name = "test.custom_site"
    assert not sites.is_known(name)
    sites.register(name, "ad-hoc site for this test")
    try:
        inj = FailureInjector()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            inj.arm(name)
    finally:
        sites.unregister(name)
    assert not sites.is_known(name)


def test_plan_validates_hit_count():
    with pytest.raises(ValueError):
        CrashPlan("x", at_hit=0)
    with pytest.raises(ValueError):
        CrashPlan("x", hits=())
    with pytest.raises(ValueError):
        CrashPlan("x", hits=(0, 2))


def test_hits_list_fires_at_each_listed_visit():
    inj = FailureInjector()
    inj.arm(sites.PERSIST_BEGIN, hits=[2, 4])
    inj.site(sites.PERSIST_BEGIN)                 # hit 1: quiet
    with pytest.raises(SimulatedCrash):
        inj.site(sites.PERSIST_BEGIN)             # hit 2: fires
    inj.site(sites.PERSIST_BEGIN)                 # hit 3: quiet
    with pytest.raises(SimulatedCrash):
        inj.site(sites.PERSIST_BEGIN)             # hit 4: fires, exhausts
    inj.site(sites.PERSIST_BEGIN)                 # hit 5: plan consumed
    assert inj.fired == [sites.PERSIST_BEGIN, sites.PERSIST_BEGIN]
    assert inj.armed_sites == []


def test_hits_list_deduplicated_and_sorted():
    plan = CrashPlan("x", hits=(5, 2, 5))
    assert plan.hits == (2, 5)
    assert plan.fires_at(2) and plan.fires_at(5)
    assert not plan.exhausted_after(2)
    assert plan.exhausted_after(5)


def test_every_hit_fires_until_disarmed():
    inj = FailureInjector()
    inj.arm(sites.PERSIST_BEGIN, every_hit=True)
    for _ in range(3):
        with pytest.raises(SimulatedCrash):
            inj.site(sites.PERSIST_BEGIN)
    assert inj.armed_sites == [sites.PERSIST_BEGIN]  # never exhausted
    inj.disarm(sites.PERSIST_BEGIN)
    inj.site(sites.PERSIST_BEGIN)
    assert len(inj.fired) == 3


def test_rearming_replaces_the_old_plan():
    """Documented overwrite semantics: one plan per site, last arm wins."""
    inj = FailureInjector()
    inj.arm(sites.PERSIST_BEGIN, at_hit=1)
    inj.arm(sites.PERSIST_BEGIN, at_hit=3)  # replaces, never merges
    inj.site(sites.PERSIST_BEGIN)           # old at_hit=1 is forgotten
    inj.site(sites.PERSIST_BEGIN)
    with pytest.raises(SimulatedCrash):
        inj.site(sites.PERSIST_BEGIN)


def test_reset_hits():
    inj = FailureInjector()
    inj.site("s")
    inj.reset_hits()
    assert inj.hits == {}


def test_reset_clears_plans_hits_and_fired():
    inj = FailureInjector()
    inj.arm(sites.PERSIST_BEGIN, at_hit=1)
    with pytest.raises(SimulatedCrash):
        inj.site(sites.PERSIST_BEGIN)
    inj.arm(sites.EVICT_BEGIN)
    inj.reset()
    assert inj.armed_sites == []
    assert inj.hits == {}
    assert inj.fired == []
    # a reset injector behaves like a fresh one
    inj.site(sites.PERSIST_BEGIN)
    assert inj.fired == []
