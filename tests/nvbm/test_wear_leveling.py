"""Wear-leveling allocator: correctness + endurance benefit."""

import pytest
from hypothesis import given, strategies as st

from repro.config import NVBM_SPEC
from repro.errors import InvalidHandleError, OutOfMemoryError
from repro.nvbm.allocator import WearLevelingAllocator
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_NVBM
from repro.nvbm.records import OctantRecord


def test_fifo_recycling_rotates_slots():
    alloc = WearLevelingAllocator(4)
    a = alloc.alloc()
    alloc.free(a)
    # fresh slots go first; 'a' comes back only after the arena wraps
    others = [alloc.alloc() for _ in range(3)]
    assert a not in others
    assert alloc.alloc() == a


def test_exhaustion_and_validation():
    alloc = WearLevelingAllocator(2)
    a = alloc.alloc()
    alloc.alloc()
    with pytest.raises(OutOfMemoryError):
        alloc.alloc()
    alloc.free(a)
    assert alloc.alloc() == a
    with pytest.raises(InvalidHandleError):
        alloc.free(a + 100)


def test_used_and_free_fraction():
    alloc = WearLevelingAllocator(8)
    idxs = [alloc.alloc() for _ in range(4)]
    assert alloc.used == 4
    alloc.free(idxs[0])
    assert alloc.used == 3
    assert alloc.free_fraction == pytest.approx(5 / 8)


def test_reset():
    alloc = WearLevelingAllocator(4)
    a = alloc.alloc()
    alloc.free(a)
    alloc.reset()
    assert alloc.used == 0
    assert alloc.alloc() == 0


@given(ops=st.lists(st.booleans(), max_size=120))
def test_behaves_like_allocator_property(ops):
    """Same external contract as the base allocator under any op mix."""
    alloc = WearLevelingAllocator(16)
    live = []
    for do_alloc in ops:
        if do_alloc:
            try:
                idx = alloc.alloc()
            except OutOfMemoryError:
                assert alloc.used == 16
                continue
            assert idx not in live
            live.append(idx)
        elif live:
            alloc.free(live.pop())
        assert alloc.used == len(live)
        assert set(int(i) for i in alloc.live_indices()) == set(live)


def _churn(arena, rounds=300, working_set=4):
    """Allocate/free a small working set repeatedly; return max slot wear."""
    for _ in range(rounds):
        handles = [arena.new_octant(OctantRecord(loc=1)) for _ in range(working_set)]
        for h in handles:
            arena.free(h)
    return arena.device.wear_max()


def test_wear_leveling_reduces_max_wear():
    """FIFO recycling spreads a churning working set over all slots."""
    clock = SimClock()
    lifo = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 64, wear_leveling=False)
    fifo = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 64, wear_leveling=True)
    hot_lifo = _churn(lifo)
    hot_fifo = _churn(fifo)
    # same total writes, far lower peak wear with leveling
    assert lifo.device.wear_total() == fifo.device.wear_total()
    assert hot_fifo * 4 < hot_lifo
    # near the theoretical floor: total/capacity
    floor = fifo.device.wear_total() / 64
    assert hot_fifo <= 2 * floor