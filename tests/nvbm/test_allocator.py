"""Allocator behaviour: exhaustion, recycling, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidHandleError, OutOfMemoryError
from repro.nvbm.allocator import RecordAllocator


def test_alloc_until_full():
    alloc = RecordAllocator(4)
    idxs = [alloc.alloc() for _ in range(4)]
    assert sorted(idxs) == [0, 1, 2, 3]
    with pytest.raises(OutOfMemoryError):
        alloc.alloc()


def test_free_recycles():
    alloc = RecordAllocator(2)
    a = alloc.alloc()
    alloc.alloc()
    alloc.free(a)
    assert alloc.alloc() == a  # LIFO reuse


def test_double_free_rejected():
    alloc = RecordAllocator(2)
    a = alloc.alloc()
    alloc.free(a)
    with pytest.raises(InvalidHandleError):
        alloc.free(a)


def test_free_unallocated_rejected():
    alloc = RecordAllocator(4)
    with pytest.raises(InvalidHandleError):
        alloc.free(3)
    with pytest.raises(InvalidHandleError):
        alloc.free(99)


def test_used_and_free_fraction():
    alloc = RecordAllocator(10)
    assert alloc.used == 0
    assert alloc.free_fraction == 1.0
    a = alloc.alloc()
    alloc.alloc()
    assert alloc.used == 2
    assert alloc.free_fraction == pytest.approx(0.8)
    alloc.free(a)
    assert alloc.used == 1


def test_live_indices():
    alloc = RecordAllocator(8)
    kept = []
    for i in range(5):
        idx = alloc.alloc()
        if i % 2 == 0:
            kept.append(idx)
        else:
            alloc.free(idx)
    assert sorted(int(i) for i in alloc.live_indices()) == sorted(kept)


def test_reset():
    alloc = RecordAllocator(4)
    alloc.alloc()
    alloc.alloc()
    alloc.reset()
    assert alloc.used == 0
    assert alloc.alloc() == 0


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        RecordAllocator(0)


@given(ops=st.lists(st.integers(min_value=0, max_value=1), max_size=200))
def test_used_never_exceeds_capacity(ops):
    """Property: used stays within [0, capacity] under any alloc/free mix."""
    alloc = RecordAllocator(16)
    live = []
    for op in ops:
        if op == 0:
            try:
                live.append(alloc.alloc())
            except OutOfMemoryError:
                assert alloc.used == 16
        elif live:
            alloc.free(live.pop())
        assert 0 <= alloc.used <= 16
        assert alloc.used == len(live)
