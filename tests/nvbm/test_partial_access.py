"""Field-granular arena access: line charging, dirty lines, unmetered mode.

The partial-access layer is the PR's tentpole: a payload update, child-slot
splice or flag flip must cost exactly the cache lines it spans (not the
whole 128-byte record), dirty only those lines in the write-back cache, and
tear only those lines on a crash.
"""

import dataclasses

import pytest

from repro.config import DRAM_SPEC, NVBM_SPEC, OCTANT_RECORD_SIZE
from repro.errors import ConsistencyError
from repro.nvbm.arena import MemoryArena, _line_mask
from repro.nvbm.clock import Category, SimClock
from repro.nvbm.device import lines_spanned
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM, NULL_HANDLE
from repro.nvbm.records import (
    FLAG_LEAF,
    FLAGS_SPAN,
    PAYLOAD_SPAN,
    OctantRecord,
    child_span,
)


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def dram(clock):
    return MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, capacity_octants=64)


@pytest.fixture
def nvbm(clock):
    return MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=64)


def _rec(loc=1, payload=(1.0, 2.0, 3.0, 4.0)):
    return OctantRecord(loc=loc, level=0, payload=payload)


# -- span arithmetic ---------------------------------------------------------


def test_lines_spanned():
    assert lines_spanned(*FLAGS_SPAN) == 1      # 1 byte at offset 9
    assert lines_spanned(*PAYLOAD_SPAN) == 1    # 32 bytes at offset 16
    assert lines_spanned(0, OCTANT_RECORD_SIZE) == 2
    assert lines_spanned(*child_span(0)) == 1   # slot 0 ends at byte 64
    assert lines_spanned(*child_span(1)) == 1   # slots 1..7 live in line 1
    assert lines_spanned(*child_span(0, 8)) == 2  # all slots straddle
    assert lines_spanned(63, 2) == 2            # boundary straddle
    assert lines_spanned(9, 0) == 1             # degenerate span still 1 line


def test_line_mask_matches_spans():
    assert _line_mask(*FLAGS_SPAN) == 0b01
    assert _line_mask(*child_span(1)) == 0b10
    assert _line_mask(*child_span(0, 8)) == 0b11
    assert _line_mask(0, OCTANT_RECORD_SIZE) == 0b11


# -- field round-trips -------------------------------------------------------


def test_payload_roundtrip_without_touching_rest(nvbm):
    h = nvbm.new_octant(_rec(loc=7))
    nvbm.write_payload(h, (9.0, 8.0, 7.0, 6.0))
    assert nvbm.read_payload(h) == (9.0, 8.0, 7.0, 6.0)
    rec = nvbm.read_octant(h)
    assert rec.loc == 7 and rec.is_leaf  # untouched fields intact


def test_child_slot_and_flags_roundtrip(nvbm):
    h = nvbm.new_octant(_rec())
    nvbm.write_child_slot(h, 3, 0xBEEF)
    nvbm.set_flags(h, FLAG_LEAF)
    rec = nvbm.read_octant(h)
    assert rec.children[3] == 0xBEEF
    assert rec.flags == FLAG_LEAF
    nvbm.write_child_slots(h, 0, [NULL_HANDLE] * 8)
    assert all(c == NULL_HANDLE for c in nvbm.read_octant(h).children)


def test_write_field_bounds_checked(nvbm):
    h = nvbm.new_octant(_rec())
    with pytest.raises(ValueError):
        nvbm.write_field(h, OCTANT_RECORD_SIZE - 2, b"xxxx")
    with pytest.raises(ValueError):
        nvbm.write_field(h, -1, b"x")
    with pytest.raises(ValueError):
        child_span(8)


def test_field_access_requires_existing_record(nvbm):
    h = nvbm.alloc()  # allocated, never written
    with pytest.raises(ConsistencyError):
        nvbm.read_payload(h)
    with pytest.raises(ConsistencyError):
        nvbm.write_payload(h, (0.0, 0.0, 0.0, 0.0))


# -- line-granular charging --------------------------------------------------


def test_partial_write_charges_one_line(clock, nvbm):
    h = nvbm.new_octant(_rec())
    before = clock.category_ns(Category.MEM_NVBM)
    nvbm.write_payload(h, (0.0, 0.0, 0.0, 0.0))
    # one line at 150 ns NVBM write latency — a full record costs 300
    assert clock.category_ns(Category.MEM_NVBM) - before \
        == pytest.approx(NVBM_SPEC.write_latency_ns)


def test_partial_read_charges_one_line(clock, nvbm):
    h = nvbm.new_octant(_rec())
    before = clock.category_ns(Category.MEM_NVBM)
    assert nvbm.read_payload(h) == (1.0, 2.0, 3.0, 4.0)
    assert clock.category_ns(Category.MEM_NVBM) - before \
        == pytest.approx(NVBM_SPEC.read_latency_ns)


def test_straddling_field_charges_two_lines(clock, nvbm):
    h = nvbm.new_octant(_rec())
    before = clock.category_ns(Category.MEM_NVBM)
    nvbm.write_child_slots(h, 0, [NULL_HANDLE] * 8)  # bytes 56..120
    assert clock.category_ns(Category.MEM_NVBM) - before \
        == pytest.approx(2 * NVBM_SPEC.write_latency_ns)


def test_line_counters_track_partial_access(nvbm):
    h = nvbm.new_octant(_rec())  # full-record write: 2 lines
    base = dataclasses.replace(nvbm.device.stats)
    nvbm.read_payload(h)
    nvbm.set_flags(h, FLAG_LEAF)
    s = nvbm.device.stats
    assert s.lines_read - base.lines_read == 1
    assert s.lines_written - base.lines_written == 1
    assert s.bytes_written - base.bytes_written == 1  # the flag byte alone
    assert s.lines_touched == s.lines_read + s.lines_written


# -- dirty-line crash semantics ---------------------------------------------


class _AlwaysPersist:
    def random(self):
        return 0.0  # < 0.5: every dirty line persists


class _NeverPersist:
    def random(self):
        return 1.0  # >= 0.5: every dirty line is dropped


def test_crash_tears_only_dirty_lines(nvbm):
    """A partial payload store leaves line 1 (children/parent) clean: no
    crash outcome may disturb it, even when the dirty line is dropped."""
    h = nvbm.new_octant(_rec(loc=5))
    nvbm.write_child_slot(h, 2, 0xABad)
    nvbm.flush()  # durable baseline
    nvbm.write_payload(h, (4.0, 4.0, 4.0, 4.0))  # dirties line 0 only

    arena_lost = MemoryArena(ARENA_NVBM, NVBM_SPEC, SimClock(), 64)
    for arena, rng, payload in (
        (nvbm, _NeverPersist(), (1.0, 2.0, 3.0, 4.0)),
        (arena_lost, _AlwaysPersist(), (4.0, 4.0, 4.0, 4.0)),
    ):
        if arena is arena_lost:
            h2 = arena.new_octant(_rec(loc=5))
            assert h2 == h
            arena.write_child_slot(h, 2, 0xABad)
            arena.flush()
            arena.write_payload(h, (4.0, 4.0, 4.0, 4.0))
        arena.crash(rng)
        rec = arena.read_octant(h)
        assert rec.payload == payload  # dirty line: all-or-nothing
        assert rec.loc == 5
        assert rec.children[2] == 0xABad  # clean line untouched either way


def test_full_write_after_partial_dirties_everything(nvbm):
    h = nvbm.new_octant(_rec())
    nvbm.flush()
    nvbm.set_flags(h, FLAG_LEAF)          # line 0
    nvbm.write_octant(h, _rec(loc=77))    # whole record dirty again
    nvbm.crash(_AlwaysPersist())
    assert nvbm.read_octant(h).loc == 77


def test_flush_clears_dirty_lines(nvbm):
    h = nvbm.new_octant(_rec())
    nvbm.write_payload(h, (0.0,) * 4)
    assert nvbm._dirty_lines
    nvbm.flush()
    assert not nvbm._dirty_lines
    nvbm.crash(_NeverPersist())  # nothing in flight: nothing to lose
    assert nvbm.read_payload(h) == (0.0,) * 4


def test_dram_partial_write_is_immediate(dram):
    """On a volatile arena field stores hit the backing store directly."""
    h = dram.new_octant(_rec())
    dram.write_payload(h, (5.0,) * 4)
    assert not dram._dirty_lines and not dram._cache
    assert dram.read_payload(h) == (5.0,) * 4


# -- unmetered inspection mode ----------------------------------------------


def test_unmetered_suppresses_clock_and_stats(clock, nvbm):
    h = nvbm.new_octant(_rec())
    before_ns = clock.now_ns
    before = dataclasses.replace(nvbm.device.stats)
    with nvbm.device.unmetered():
        nvbm.read_octant(h)
        nvbm.read_payload(h)
        with nvbm.device.unmetered():  # nesting is allowed
            nvbm.read_flags(h)
    assert clock.now_ns == before_ns
    assert nvbm.device.stats == before


def test_unmetered_writes_still_land(clock, nvbm):
    h = nvbm.new_octant(_rec())
    before_ns = clock.now_ns
    with nvbm.device.unmetered():
        nvbm.write_payload(h, (8.0,) * 4)
    assert clock.now_ns == before_ns
    assert nvbm.read_payload(h) == (8.0,) * 4  # data path unaffected


def test_metering_resumes_after_block(clock, nvbm):
    h = nvbm.new_octant(_rec())
    with nvbm.device.unmetered():
        nvbm.read_payload(h)
    before_ns = clock.now_ns
    nvbm.read_payload(h)
    assert clock.now_ns > before_ns
