"""Round-trip and flag tests for the packed octant record format."""

import pytest
from hypothesis import given, strategies as st

from repro.config import OCTANT_RECORD_SIZE
from repro.nvbm.records import (
    FLAG_DELETED,
    FLAG_LEAF,
    MAX_CHILDREN,
    OctantRecord,
    pack_record,
    unpack_record,
)


def test_default_record_is_leaf():
    rec = OctantRecord()
    assert rec.is_leaf
    assert not rec.is_deleted
    assert rec.live_children() == []


def test_pack_size():
    assert len(pack_record(OctantRecord())) == OCTANT_RECORD_SIZE


def test_roundtrip_simple():
    rec = OctantRecord(
        loc=12345,
        level=4,
        flags=FLAG_LEAF | FLAG_DELETED,
        epoch=7,
        payload=(1.0, -2.5, 3.25, 0.0),
        parent=0xDEAD,
        children=[1, 2, 3, 4, 5, 6, 7, 8],
    )
    back = unpack_record(pack_record(rec))
    assert back.loc == rec.loc
    assert back.level == rec.level
    assert back.flags == rec.flags
    assert back.epoch == rec.epoch
    assert back.payload == rec.payload
    assert back.parent == rec.parent
    assert back.children == rec.children


def test_unpack_rejects_wrong_size():
    with pytest.raises(ValueError):
        unpack_record(b"\x00" * 64)


def test_pack_rejects_wrong_child_count():
    rec = OctantRecord(children=[0] * 3)
    with pytest.raises(ValueError):
        pack_record(rec)


def test_flag_setters():
    rec = OctantRecord()
    rec.set_leaf(False)
    assert not rec.is_leaf
    rec.set_deleted(True)
    assert rec.is_deleted
    rec.set_deleted(False)
    rec.set_leaf(True)
    assert rec.is_leaf and not rec.is_deleted


def test_copy_is_deep_for_children():
    rec = OctantRecord(children=[9] * MAX_CHILDREN)
    dup = rec.copy()
    dup.children[0] = 42
    assert rec.children[0] == 9


@given(
    loc=st.integers(min_value=0, max_value=2**64 - 1),
    level=st.integers(min_value=0, max_value=255),
    flags=st.integers(min_value=0, max_value=255),
    epoch=st.integers(min_value=0, max_value=2**32 - 1),
    payload=st.tuples(*[st.floats(allow_nan=False, width=64)] * 4),
    parent=st.integers(min_value=0, max_value=2**64 - 1),
    children=st.lists(
        st.integers(min_value=0, max_value=2**64 - 1),
        min_size=MAX_CHILDREN,
        max_size=MAX_CHILDREN,
    ),
)
def test_roundtrip_property(loc, level, flags, epoch, payload, parent, children):
    rec = OctantRecord(
        loc=loc, level=level, flags=flags, epoch=epoch,
        payload=payload, parent=parent, children=children,
    )
    back = unpack_record(pack_record(rec))
    assert (back.loc, back.level, back.flags, back.epoch) == (loc, level, flags, epoch)
    assert back.payload == payload
    assert back.parent == parent
    assert back.children == children
