"""Media-fault model, CRC sealing and per-line wear accounting."""

import numpy as np
import pytest

from repro.config import CACHE_LINE_SIZE, NVBM_SPEC, OCTANT_RECORD_SIZE
from repro.errors import MediaError, UncorrectableError
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.device import LINES_PER_RECORD, MediaFaultModel
from repro.nvbm.pointers import ARENA_NVBM, index_of
from repro.nvbm.records import (
    CRC_SPAN,
    OctantRecord,
    PAYLOAD_SPAN,
    pack_record,
    record_crc,
    seal_record,
    verify_record,
)


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def nvbm(clock):
    return MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=64)


def _rec(loc=1, level=0):
    return OctantRecord(loc=loc, level=level)


def _gline(handle, line=0):
    return index_of(handle) * LINES_PER_RECORD + line


# ------------------------------------------------------------- wear accounting


def test_full_record_write_wears_every_line(nvbm):
    """Regression: a 2-line record write must age both lines, not just the
    record's first (the old per-slot accounting under-counted line 1)."""
    h = nvbm.new_octant(_rec())
    idx = index_of(h)
    wear = nvbm.device._wear
    base = idx * LINES_PER_RECORD
    assert list(wear[base: base + LINES_PER_RECORD]) == [1] * LINES_PER_RECORD


def test_field_write_wears_only_spanned_line(nvbm):
    h = nvbm.new_octant(_rec())
    nvbm.write_payload(h, (1.0, 2.0, 3.0, 4.0))  # one-line field
    base = index_of(h) * LINES_PER_RECORD
    line = PAYLOAD_SPAN[0] // CACHE_LINE_SIZE
    wear = nvbm.device._wear
    expect = [1] * LINES_PER_RECORD
    expect[line] += 1
    assert list(wear[base: base + LINES_PER_RECORD]) == expect


def test_wear_max_counts_per_line_writes(nvbm):
    h = nvbm.alloc()
    for _ in range(10):
        nvbm.write(h, pack_record(_rec()))
    assert nvbm.device.wear_max() == 10
    assert nvbm.device.wear_total() == 10 * LINES_PER_RECORD
    assert nvbm.device.wear_headroom() == pytest.approx(
        1.0 - 10 / NVBM_SPEC.endurance_writes)


# ------------------------------------------------------------ CRC seal helpers


def test_seal_and_verify_roundtrip():
    data = pack_record(_rec(loc=7))
    sealed = seal_record(data)
    assert len(sealed) == OCTANT_RECORD_SIZE
    assert verify_record(sealed)
    assert sealed[: CRC_SPAN[0]] == data[: CRC_SPAN[0]]


def test_verify_detects_any_covered_byte_flip():
    sealed = seal_record(pack_record(_rec(loc=7)))
    for off in (0, CRC_SPAN[0] // 2, CRC_SPAN[0] - 1):
        corrupt = bytearray(sealed)
        corrupt[off] ^= 0x01
        assert not verify_record(bytes(corrupt))


def test_record_crc_is_stable_and_ignores_crc_field():
    data = pack_record(_rec(loc=9))
    assert record_crc(data) == record_crc(seal_record(data))


# ----------------------------------------------------- arena-level CRC sealing


def test_backing_corruption_raises_crc_media_error(clock, nvbm):
    h = nvbm.new_octant(_rec(loc=3))
    nvbm.flush()  # sealing point
    idx = index_of(h)
    raw = bytearray(nvbm._backing[idx])
    raw[4] ^= 0xFF  # silent medium corruption, no fault model involved
    nvbm._backing[idx] = bytes(raw)
    with pytest.raises(MediaError) as ei:
        nvbm.read(h)
    assert ei.value.kind == "crc"
    assert ei.value.slot == idx


def test_cache_hit_skips_media_checks(nvbm):
    """The write-back cache is the writer's own bytes: a dirty record is
    readable even while the backing copy is corrupt."""
    h = nvbm.new_octant(_rec(loc=3))
    nvbm.flush()
    idx = index_of(h)
    raw = bytearray(nvbm._backing[idx])
    raw[4] ^= 0xFF
    nvbm._backing[idx] = bytes(raw)
    rec = _rec(loc=5)
    nvbm.write_octant(h, rec)  # re-dirties the cache
    assert nvbm.read_octant(h).loc == 5


def test_crash_voids_seal_of_torn_records(clock, nvbm):
    """A record dirty at power loss is an old/new line merge: whatever seal
    the old bytes carried must not condemn the merged image."""
    h = nvbm.new_octant(_rec(loc=3))
    nvbm.flush()
    rec = nvbm.read_octant(h)
    rec.loc = 77
    nvbm.write_octant(h, rec)  # dirty again
    nvbm.crash(np.random.default_rng(1))
    # the merged bytes may be old, new, or torn — but never a CRC error
    got = nvbm.read_octant(h)
    assert got.loc in (3, 77)


def test_flush_reseals_and_unmetered_skips_checks(nvbm):
    h = nvbm.new_octant(_rec(loc=3))
    nvbm.flush()
    idx = index_of(h)
    raw = bytearray(nvbm._backing[idx])
    raw[4] ^= 0xFF
    nvbm._backing[idx] = bytes(raw)
    with nvbm.device.unmetered():  # inspection probes never trip faults
        nvbm.read(h)
    with pytest.raises(MediaError):
        nvbm.read(h)


# ------------------------------------------------------------ MediaFaultModel


def test_unattached_model_changes_nothing(clock, nvbm):
    h = nvbm.new_octant(_rec(loc=3))
    nvbm.flush()
    t0 = clock.now_ns
    nvbm.read(h)
    cost_plain = clock.now_ns - t0
    nvbm.attach_fault_model(MediaFaultModel(seed=5))  # quiescent
    t0 = clock.now_ns
    assert nvbm.read_octant(h).loc == 3
    assert clock.now_ns - t0 == cost_plain  # verification charges nothing


def test_planted_rot_faults_until_rewritten(clock, nvbm):
    h = nvbm.new_octant(_rec(loc=3))
    nvbm.flush()
    model = MediaFaultModel(seed=5)
    nvbm.attach_fault_model(model)
    model.plant_rot(_gline(h))
    with pytest.raises(UncorrectableError) as ei:
        nvbm.read(h)
    assert ei.value.kind == "rot"
    nvbm.write_octant(h, _rec(loc=4))  # rewrite refreshes the cells
    nvbm.flush()
    assert nvbm.read_octant(h).loc == 4


def test_stuck_line_survives_rewrite(nvbm):
    h = nvbm.new_octant(_rec(loc=3))
    nvbm.flush()
    model = MediaFaultModel(seed=5)
    nvbm.attach_fault_model(model)
    model.plant_stuck(_gline(h))
    nvbm.write_octant(h, _rec(loc=4))
    nvbm.flush()
    with pytest.raises(UncorrectableError) as ei:
        nvbm.read(h)
    assert ei.value.kind == "stuck"


def test_field_read_checks_only_spanned_lines(nvbm):
    """A fault on line 1 must not fail a line-0 field read — but must fail
    a whole-record read, which spans it."""
    h = nvbm.new_octant(_rec(loc=3))
    nvbm.flush()
    model = MediaFaultModel(seed=5)
    nvbm.attach_fault_model(model)
    model.plant_stuck(_gline(h, line=1))
    assert PAYLOAD_SPAN[0] // CACHE_LINE_SIZE == 0
    nvbm.read_payload(h)  # line 0 only: clean
    with pytest.raises(UncorrectableError):
        nvbm.read(h)


def test_transient_clears_on_reread(clock, nvbm):
    h = nvbm.new_octant(_rec(loc=3))
    nvbm.flush()
    model = MediaFaultModel(seed=5, transient_rate=1.0)
    nvbm.attach_fault_model(model)
    with pytest.raises(UncorrectableError) as ei:
        nvbm.read(h)
    assert ei.value.kind == "transient"
    # rate 1.0 keeps faulting, but each read consumes its own draw — a
    # realistic rate lets the retry rung clear it deterministically
    model.transient_rate = 0.0
    assert nvbm.read_octant(h).loc == 3


def test_wear_out_faults_past_fraction(clock, nvbm):
    h = nvbm.alloc()
    spec_limit = NVBM_SPEC.endurance_writes
    model = MediaFaultModel(seed=5, wear_fraction=3.0 / spec_limit)
    nvbm.attach_fault_model(model)
    for i in range(8):  # drive wear far past limit * 1.5 (the max jitter)
        nvbm.write(h, pack_record(_rec(loc=i)))
    nvbm.flush()
    with pytest.raises(UncorrectableError) as ei:
        nvbm.read(h)
    assert ei.value.kind == "wear"


def test_fault_model_is_deterministic():
    a = MediaFaultModel(seed=9, rot_mtbf_ns=1e6, transient_rate=0.3)
    b = MediaFaultModel(seed=9, rot_mtbf_ns=1e6, transient_rate=0.3)
    a._endurance = b._endurance = 10**7
    seq = [(g, t) for g in range(6) for t in (0.0, 5e5, 5e6, 5e7)]
    got_a = [a.check(g, t, wear=0) for g, t in seq]
    got_b = [b.check(g, t, wear=0) for g, t in seq]
    assert got_a == got_b
    assert any(k is not None for k in got_a)  # the model actually fires


# ------------------------------------------------------------ retire semantics


def test_retire_removes_slot_from_rotation(nvbm):
    h = nvbm.new_octant(_rec(loc=3))
    idx = index_of(h)
    used_before = nvbm.used
    nvbm.retire(h)
    assert nvbm.allocator.is_retired(idx)
    assert nvbm.used == used_before - 1
    # the retired index is never handed out again
    handles = [nvbm.alloc() for _ in range(nvbm.capacity - nvbm.used - 1)]
    assert idx not in {index_of(x) for x in handles}


def test_retired_capacity_counts_as_spent(nvbm):
    h = nvbm.new_octant(_rec())
    free_before = nvbm.free_fraction
    nvbm.retire(h)
    assert nvbm.free_fraction == pytest.approx(free_before)
    assert nvbm.allocator.retired == 1
