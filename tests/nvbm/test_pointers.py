"""Handle encoding tests."""

import pytest
from hypothesis import given, strategies as st

from repro.nvbm.pointers import (
    ARENA_DRAM,
    ARENA_NVBM,
    NULL_HANDLE,
    arena_of,
    index_of,
    is_dram,
    is_null,
    is_nvbm,
    make_handle,
)


def test_null():
    assert is_null(NULL_HANDLE)
    assert not is_dram(NULL_HANDLE)
    assert not is_nvbm(NULL_HANDLE)


def test_tags():
    h = make_handle(ARENA_DRAM, 5)
    assert is_dram(h) and not is_nvbm(h)
    h2 = make_handle(ARENA_NVBM, 5)
    assert is_nvbm(h2) and not is_dram(h2)
    assert h != h2  # same index, different arena


def test_invalid_inputs():
    with pytest.raises(ValueError):
        make_handle(0, 1)
    with pytest.raises(ValueError):
        make_handle(ARENA_DRAM, -1)
    with pytest.raises(ValueError):
        make_handle(ARENA_DRAM, 1 << 48)
    with pytest.raises(ValueError):
        make_handle(1 << 17, 0)


@given(
    arena=st.integers(min_value=1, max_value=0xFFFF),
    index=st.integers(min_value=0, max_value=(1 << 48) - 1),
)
def test_roundtrip_property(arena, index):
    h = make_handle(arena, index)
    assert arena_of(h) == arena
    assert index_of(h) == index
    assert not is_null(h)
