"""Arena semantics: latency charging, cache durability, crash/torn writes."""

import numpy as np
import pytest

from repro.config import (
    CACHE_LINE_SIZE,
    DRAM_SPEC,
    NVBM_SPEC,
    OCTANT_RECORD_SIZE,
)
from repro.errors import ConsistencyError, InvalidHandleError, SimulatedCrash
from repro.nvbm import sites
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import Category, SimClock
from repro.nvbm.failure import FailureInjector
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.nvbm.records import OctantRecord, pack_record


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def dram(clock):
    return MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, capacity_octants=64)


@pytest.fixture
def nvbm(clock):
    return MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=64)


def _rec(loc=1, level=0):
    return OctantRecord(loc=loc, level=level)


def test_write_read_roundtrip(nvbm):
    h = nvbm.new_octant(_rec(loc=42))
    assert nvbm.read_octant(h).loc == 42


def test_read_your_writes_through_cache(nvbm):
    """A cached (un-flushed) store must be visible to subsequent loads."""
    h = nvbm.new_octant(_rec(loc=1))
    rec = nvbm.read_octant(h)
    rec.loc = 99
    nvbm.write_octant(h, rec)
    assert nvbm.dirty_records > 0
    assert nvbm.read_octant(h).loc == 99


def test_latency_charged_per_cache_line(clock, nvbm):
    h = nvbm.alloc()
    before = clock.category_ns(Category.MEM_NVBM)
    nvbm.write(h, pack_record(_rec()))
    # 128-byte record = 2 cache lines at 150 ns NVBM write latency.
    assert clock.category_ns(Category.MEM_NVBM) - before == pytest.approx(300.0)
    before = clock.category_ns(Category.MEM_NVBM)
    nvbm.read(h)
    assert clock.category_ns(Category.MEM_NVBM) - before == pytest.approx(200.0)


def test_dram_faster_than_nvbm(clock, dram, nvbm):
    dram.new_octant(_rec())
    nvbm.new_octant(_rec())
    dram_t = clock.category_ns(Category.MEM_DRAM)
    nvbm_t = clock.category_ns(Category.MEM_NVBM)
    assert nvbm_t > dram_t  # 150 vs 60 per line


def test_wrong_arena_handle_rejected(dram, nvbm):
    h = dram.new_octant(_rec())
    with pytest.raises(InvalidHandleError):
        nvbm.read(h)


def test_unallocated_handle_rejected(nvbm):
    h = nvbm.new_octant(_rec())
    nvbm.free(h)
    with pytest.raises(InvalidHandleError):
        nvbm.read(h)


def test_wrong_size_write_rejected(nvbm):
    h = nvbm.alloc()
    with pytest.raises(ValueError):
        nvbm.write(h, b"short")


def test_allocated_never_written_read_fails(nvbm):
    h = nvbm.alloc()
    with pytest.raises(ConsistencyError):
        nvbm.read(h)


def test_flush_persists(nvbm):
    h = nvbm.new_octant(_rec(loc=5))
    nvbm.flush()
    assert nvbm.dirty_records == 0
    nvbm.crash(np.random.default_rng(0))  # nothing dirty -> no-op
    assert nvbm.read_octant(h).loc == 5


def test_crash_drops_unflushed_nvbm_writes():
    clock = SimClock()
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=64)
    h = nvbm.new_octant(_rec(loc=7))
    nvbm.flush()
    rec = nvbm.read_octant(h)
    rec.loc = 1000
    nvbm.write_octant(h, rec)
    # Force the "no lines persisted" branch deterministically.
    class AlwaysOld:
        def random(self):
            return 0.9  # >= 0.5 -> keep old line

    nvbm.crash(AlwaysOld())
    assert nvbm.read_octant(h).loc == 7  # old value survived intact


def test_crash_can_tear_records():
    """With a half-persisting RNG the record may mix old and new lines."""

    class FirstLineOnly:
        def __init__(self):
            self.calls = 0

        def random(self):
            self.calls += 1
            return 0.1 if self.calls % 2 == 1 else 0.9

    clock = SimClock()
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=64)
    h = nvbm.new_octant(OctantRecord(loc=7, parent=111, children=[0] * 8))
    nvbm.flush()
    rec = nvbm.read_octant(h)
    rec.loc = 1000      # lives in the first cache line
    rec.children = [5] * 8  # tail lives in the second line
    nvbm.write_octant(h, rec)
    nvbm.crash(FirstLineOnly())
    torn = nvbm.read_octant(h)
    assert torn.loc == 1000  # new first line (bytes 0-63) persisted
    # children[0] sits at offset 56, inside the first line -> new value;
    # children[1:] live in the dropped second line -> old values. Torn record.
    assert torn.children[0] == 5
    assert torn.children[1:] == [0] * 7


def test_crash_tears_whole_lines_only():
    """Every 64-byte line of a torn record is entirely old or entirely new.

    Over many seeded crashes each surviving record must decompose, line by
    line, into the pre-crash or post-crash image — a mixed line would mean
    the crash model tears below cache-line granularity, which real hardware
    (and §2's failure model) does not.
    """
    old = pack_record(OctantRecord(loc=7, parent=111, children=[1] * 8))
    new = pack_record(OctantRecord(loc=1000, parent=222, children=[5] * 8))
    assert old != new
    lines = OCTANT_RECORD_SIZE // CACHE_LINE_SIZE
    outcomes = set()
    for seed in range(32):
        clock = SimClock()
        nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=8)
        h = nvbm.alloc()
        nvbm.write(h, old)
        nvbm.flush()
        nvbm.write(h, new)
        nvbm.crash(np.random.default_rng(seed))
        merged = nvbm.read(h)
        pattern = []
        for line in range(lines):
            lo, hi = line * CACHE_LINE_SIZE, (line + 1) * CACHE_LINE_SIZE
            assert merged[lo:hi] in (old[lo:hi], new[lo:hi])
            pattern.append(merged[lo:hi] == new[lo:hi])
        outcomes.add(tuple(pattern))
    # p=1/2 per line over 32 seeds: both mixed outcomes must show up too,
    # i.e. the tear is genuinely per-line, not all-or-nothing per record.
    assert len(outcomes) > 2


def test_crash_seeded_rng_is_reproducible():
    def run(seed):
        clock = SimClock()
        nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=8)
        h = nvbm.new_octant(_rec(loc=3))
        nvbm.flush()
        nvbm.write_octant(h, _rec(loc=77))
        nvbm.crash(np.random.default_rng(seed))
        return nvbm.read(h)

    assert run(11) == run(11)


def test_dram_crash_loses_everything(dram):
    dram.new_octant(_rec())
    dram.roots.set("V", 123)
    dram.crash()
    assert dram.used == 0
    assert dram.roots.get("V") == 0


def test_nvbm_crash_keeps_allocator_metadata():
    clock = SimClock()
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=8)
    h = nvbm.new_octant(_rec())
    nvbm.flush()
    nvbm.crash(np.random.default_rng(0))
    assert nvbm.contains(h)
    assert nvbm.used == 1


def test_root_slot_swap(nvbm):
    nvbm.roots.set("Vi", 10)
    nvbm.roots.set("Vprev", 20)
    nvbm.roots.swap("Vi", "Vprev")
    assert nvbm.roots.get("Vi") == 20
    assert nvbm.roots.get("Vprev") == 10


def test_root_slot_swap_is_atomic_under_mid_swap_crash(clock):
    """A crash between the two slot stores must leave BOTH slots untouched.

    The §3.2 persist point leans on the swap being all-or-nothing; a torn
    swap (one slot new, one slot old) would leave two roots naming the same
    version and recovery could not tell V_i from V_{i-1}.
    """
    inj = FailureInjector()
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=64,
                       injector=inj)
    nvbm.roots.set("Vi", 10)
    nvbm.roots.set("Vprev", 20)
    inj.arm(sites.ROOTS_SWAP_MID, at_hit=1)
    with pytest.raises(SimulatedCrash):
        nvbm.roots.swap("Vi", "Vprev")
    assert nvbm.roots.get("Vi") == 10
    assert nvbm.roots.get("Vprev") == 20
    # power-loss on top of the interrupted swap changes nothing either:
    # slot stores are write-through, never cached
    nvbm.crash(np.random.default_rng(0))
    assert nvbm.roots.get("Vi") == 10
    assert nvbm.roots.get("Vprev") == 20
    # and with the plan consumed the retry completes
    nvbm.roots.swap("Vi", "Vprev")
    assert nvbm.roots.get("Vi") == 20
    assert nvbm.roots.get("Vprev") == 10


def test_device_stats_and_wear(nvbm):
    h = nvbm.new_octant(_rec())
    for _ in range(9):
        nvbm.write_octant(h, _rec())
    assert nvbm.device.stats.writes == 10
    assert nvbm.device.wear_max() == 10
    assert 0.0 < nvbm.device.wear_headroom() < 1.0


def test_live_handles(nvbm):
    hs = {nvbm.new_octant(_rec(loc=i)) for i in range(5)}
    victim = next(iter(hs))
    nvbm.free(victim)
    assert set(nvbm.live_handles()) == hs - {victim}


def test_free_fraction_drives_thresholds(nvbm):
    for _ in range(32):
        nvbm.new_octant(_rec())
    assert nvbm.free_fraction == pytest.approx(0.5)
