"""Tests for the simulated clock."""

import pytest

from repro.nvbm.clock import Category, SimClock


def test_advance_accumulates():
    clk = SimClock()
    clk.advance(100.0, Category.COMPUTE)
    clk.advance(50.0, Category.MEM_NVBM)
    assert clk.now_ns == 150.0
    assert clk.category_ns(Category.COMPUTE) == 100.0
    assert clk.category_ns(Category.MEM_NVBM) == 50.0


def test_negative_advance_rejected():
    clk = SimClock()
    with pytest.raises(ValueError):
        clk.advance(-1.0)


def test_phase_attribution():
    clk = SimClock()
    with clk.phase("refine"):
        clk.advance(10.0)
        with clk.phase("balance"):
            clk.advance(5.0)
        clk.advance(1.0)
    clk.advance(100.0)  # outside any phase
    assert clk.phase_ns("refine") == 11.0
    assert clk.phase_ns("balance") == 5.0
    assert clk.now_ns == 116.0


def test_phase_stack_unwinds_on_exception():
    clk = SimClock()
    with pytest.raises(RuntimeError):
        with clk.phase("broken"):
            raise RuntimeError("boom")
    clk.advance(7.0)
    assert clk.phase_ns("broken") == 0.0


def test_snapshot_elapsed():
    clk = SimClock()
    clk.advance(40.0)
    s0 = clk.snapshot()
    clk.advance(60.0)
    s1 = clk.snapshot()
    assert s1.elapsed_since(s0) == 60.0
    # snapshots are independent copies
    clk.advance(1.0)
    assert s1.now_ns == 100.0


def test_now_s_conversion():
    clk = SimClock()
    clk.advance(2.5e9)
    assert clk.now_s == pytest.approx(2.5)


def test_reset():
    clk = SimClock()
    with clk.phase("p"):
        clk.advance(10.0, Category.IO)
    clk.reset()
    assert clk.now_ns == 0.0
    assert clk.phase_ns("p") == 0.0
    assert clk.category_ns(Category.IO) == 0.0
