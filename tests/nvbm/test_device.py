"""MemoryDevice: latency charging, stats merging, wear accounting."""


from repro.config import DRAM_SPEC, NVBM_SPEC
from repro.nvbm.clock import Category, SimClock
from repro.nvbm.device import DeviceStats, MemoryDevice


def test_read_write_charge_per_line():
    clock = SimClock()
    dev = MemoryDevice(NVBM_SPEC, clock)
    dev.on_read(1)  # still one full line
    assert clock.now_ns == 100.0
    dev.on_read(65)  # two lines
    assert clock.now_ns == 300.0
    dev.on_write(64)
    assert clock.now_ns == 450.0


def test_category_routing():
    clock = SimClock()
    MemoryDevice(DRAM_SPEC, clock).on_read(8)
    assert clock.category_ns(Category.MEM_DRAM) == 60.0
    assert clock.category_ns(Category.MEM_NVBM) == 0.0
    MemoryDevice(NVBM_SPEC, clock).on_write(8)
    assert clock.category_ns(Category.MEM_NVBM) == 150.0


def test_stats_counters():
    dev = MemoryDevice(NVBM_SPEC, SimClock())
    dev.on_read(100)
    dev.on_write(200, slot=3)
    assert dev.stats.reads == 1
    assert dev.stats.writes == 1
    assert dev.stats.bytes_read == 100
    assert dev.stats.bytes_written == 200


def test_stats_merged_with():
    a = DeviceStats(reads=1, writes=2, bytes_read=10, bytes_written=20)
    b = DeviceStats(reads=3, writes=4, bytes_read=30, bytes_written=40)
    m = a.merged_with(b)
    assert (m.reads, m.writes, m.bytes_read, m.bytes_written) == (4, 6, 40, 60)
    # originals untouched
    assert a.reads == 1 and b.reads == 3


def test_wear_tracking_grows_lazily():
    dev = MemoryDevice(NVBM_SPEC, SimClock())
    dev.on_write(8, slot=5000)
    dev.on_write(8, slot=5000)
    dev.on_write(8, slot=2)
    assert dev.wear_max() == 2
    assert dev.wear_total() == 3
    assert 0.0 < dev.wear_headroom() < 1.0


def test_wear_disabled():
    dev = MemoryDevice(NVBM_SPEC, SimClock(), track_wear=False)
    dev.on_write(8, slot=1)
    assert dev.wear_max() == 0


def test_reset_stats():
    dev = MemoryDevice(NVBM_SPEC, SimClock())
    dev.on_write(8, slot=1)
    dev.reset_stats()
    assert dev.stats.writes == 0
    assert dev.wear_max() == 0
