"""End-to-end: one Observability attached across the whole stack.

The obs counters are *mirrors* of state the components already track
(DeviceStats, PMStats, SessionStats), so each test cross-checks the mirror
against its source of truth — a disagreement means an instrumentation site
was missed or double-counted.
"""

import pytest

from repro.config import PMOctreeConfig, SolverConfig
from repro.core import pm_create
from repro.core.replication import ReplicaSession
from repro.obs import Observability, observe_rig, snapshot_wear
from repro.parallel.runtime import Backend, RunConfig, run_parallel
from repro.solver.simulation import DropletSimulation


@pytest.fixture
def rig(clock, dram_arena, nvbm_arena):
    # obs attaches to the arenas before the tree exists so the device
    # counters see the construction traffic too (exact-mirror tests)
    obs = Observability(clock)
    observe_rig(obs, arenas=(dram_arena, nvbm_arena))
    tree = pm_create(dram_arena, nvbm_arena, dim=2,
                     config=PMOctreeConfig(dram_capacity_octants=96,
                                           seed=11))
    observe_rig(obs, tree=tree)
    return obs, clock, dram_arena, nvbm_arena, tree


def _run_droplet(clock, tree, steps=6, obs=None):
    solver = SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)

    def persistence(sim_):
        sim_.tree.persist()
        sim_.tree.gc()

    sim = DropletSimulation(tree, solver, clock=clock,
                            persistence=persistence)
    if obs is not None:
        sim.obs = obs
    sim.run(steps)
    return sim


def test_device_counters_mirror_device_stats(rig):
    obs, clock, dram, nvbm, tree = rig
    _run_droplet(clock, tree)
    for arena in (dram, nvbm):
        assert obs.metrics.get("device.reads", device=arena.name).value \
            == arena.device.stats.reads
        assert obs.metrics.get("device.writes", device=arena.name).value \
            == arena.device.stats.writes
        assert obs.metrics.get("device.bytes_written",
                               device=arena.name).value \
            == arena.device.stats.bytes_written


def test_pm_counters_mirror_pm_stats(rig):
    obs, clock, dram, nvbm, tree = rig
    _run_droplet(clock, tree)
    m = obs.metrics
    s = tree.stats
    assert m.total("pm.cow_copies") == s.cow_copies
    assert m.total("pm.inplace_updates") == s.inplace_updates
    assert m.total("pm.evictions") == s.evictions
    assert m.total("pm.merges") == s.merges
    assert m.total("pm.persists") == s.persists
    assert m.total("pm.transformations") == s.transformations
    assert m.total("pm.gc_runs") == s.gc_runs
    assert m.total("pm.octants_reclaimed") == s.octants_reclaimed
    assert m.total("pm.marked_deleted") == s.marked_deleted
    # the run must actually exercise the interesting paths
    assert s.persists > 0 and s.merges > 0


def test_simulation_spans_nest_under_step(rig):
    obs, clock, dram, nvbm, tree = rig
    _run_droplet(clock, tree, steps=3, obs=obs)
    steps = obs.tracer.named("sim.step")
    assert len(steps) == 3
    for sp in steps:
        child_names = {c.name for c in obs.tracer.children_of(sp)}
        assert {"sim.refine", "sim.balance",
                "sim.solve", "sim.persist.enqueue"} <= child_names
    # pm.persist nests under the compute-path half of the persist point
    persists = obs.tracer.named("pm.persist")
    assert persists
    parent_names = {
        next(s.name for s in obs.tracer.spans
             if s.span_id == p.parent_id)
        for p in persists
    }
    assert parent_names == {"sim.persist.enqueue"}
    # span durations are simulated time: the step spans cover the clock
    assert sum(s.duration_ns for s in steps) <= clock.now_ns


def test_replication_counters_mirror_session_stats(rig):
    obs, clock, dram, nvbm, tree = rig
    session = ReplicaSession(tree)
    observe_rig(obs, session=session)
    solver = SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)

    def persistence(sim_):
        sim_.tree.persist()
        session.ship()

    DropletSimulation(tree, solver, clock=clock,
                      persistence=persistence).run(4)
    m, s = obs.metrics, session.stats
    assert s.ships > 0
    assert m.total("replication.ships") == s.ships
    assert m.total("replication.bytes_shipped") == s.bytes_shipped
    assert m.total("replication.retries") == s.retries
    assert m.get("replication.ship_attempts", peer="peer").count == s.ships


def test_wear_snapshot_matches_device(rig):
    obs, clock, dram, nvbm, tree = rig
    _run_droplet(clock, tree)
    snapshot_wear(obs, nvbm.device, nvbm.name)
    hist = obs.metrics.get("device.wear_writes_per_slot", device=nvbm.name)
    assert hist.sum == nvbm.device.wear_total()
    assert hist.max == nvbm.device.wear_max()
    assert obs.metrics.get("device.wear_max", device=nvbm.name).value \
        == nvbm.device.wear_max()


def test_run_parallel_accepts_obs_and_binds_probe_clock():
    obs = Observability()  # no clock yet: run_parallel late-binds its probe
    cfg = RunConfig(backend=Backend.PM_OCTREE, nranks=4,
                    target_elements=1e5, steps=3)
    result = run_parallel(cfg, obs=obs)
    assert obs.metrics.clock is not None
    # per-rank phase gauges exist for every rank
    for r in range(cfg.nranks):
        assert obs.metrics.get("clock.now_ns", rank=r) is not None
    makespan = obs.metrics.get("run.makespan_ns",
                               backend=Backend.PM_OCTREE.value)
    assert makespan.value == pytest.approx(result.makespan_s * 1e9)
    # device counters rode along via the resources dict
    assert obs.metrics.total("device.writes") > 0
    assert obs.tracer.named("parallel.step")
    # and the un-observed run still works exactly as before
    result2 = run_parallel(cfg)
    assert result2.makespan_s == pytest.approx(result.makespan_s)
