"""Unit tests for trace spans on the simulated clock."""

import io
import json

import pytest

from repro.nvbm.clock import SimClock
from repro.obs.trace import Tracer


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


def test_span_times_simulated_clock(clock, tracer):
    with tracer.span("work") as sp:
        clock.advance(1234.0)
    assert not sp.open
    assert sp.duration_ns == 1234.0


def test_nested_spans_record_parent(clock, tracer):
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            clock.advance(10.0)
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert tracer.children_of(outer) == [inner]


def test_open_span_duration_raises(tracer):
    with tracer.span("w") as sp:
        with pytest.raises(ValueError):
            _ = sp.duration_ns
    assert sp.duration_ns == 0.0


def test_span_closes_on_exception(clock, tracer):
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            clock.advance(5.0)
            raise RuntimeError("x")
    (sp,) = tracer.named("boom")
    assert not sp.open
    assert sp.duration_ns == 5.0
    assert tracer._stack == []  # stack unwound


def test_total_ns_sums_closed_spans(clock, tracer):
    for _ in range(3):
        with tracer.span("phase"):
            clock.advance(100.0)
    assert tracer.total_ns("phase") == 300.0


def test_unbound_clock_raises():
    t = Tracer()
    with pytest.raises(ValueError, match="no SimClock bound"):
        with t.span("w"):
            pass


def test_late_binding(clock):
    t = Tracer()
    t.bind_clock(clock)
    with t.span("w"):
        clock.advance(1.0)
    assert t.total_ns("w") == 1.0


def test_keep_cap_drops_excess(clock):
    t = Tracer(clock=clock, keep=2)
    for i in range(5):
        with t.span(f"s{i}"):
            pass
    assert len(t.spans) == 2
    assert t.dropped == 3


def test_jsonl_export(clock, tracer):
    with tracer.span("a", step=1):
        clock.advance(7.0)
    fh = io.StringIO()
    assert tracer.export_jsonl(fh) == 1
    row = json.loads(fh.getvalue())
    assert row["name"] == "a"
    assert row["labels"] == {"step": 1}
    assert row["duration_ns"] == 7.0


def test_observability_bundle_binds_both():
    from repro.obs import Observability

    obs = Observability()
    clk = SimClock()
    obs.bind_clock(clk)
    assert obs.metrics.clock is clk
    assert obs.tracer.clock is clk
    with obs.tracer.span("w"):
        clk.advance(3.0)
    obs.metrics.counter("c").inc()
    m_out, t_out = io.StringIO(), io.StringIO()
    obs.export_jsonl(metrics_fh=m_out, trace_fh=t_out)
    assert json.loads(m_out.getvalue())["name"] == "c"
    assert json.loads(t_out.getvalue())["name"] == "w"
