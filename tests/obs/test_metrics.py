"""Unit tests for the metrics registry."""

import io
import json

import pytest

from repro.nvbm.clock import SimClock
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def reg(clock):
    return MetricsRegistry(clock=clock)


def test_counter_get_or_create_identity(reg):
    a = reg.counter("device.writes", device="NVBM")
    b = reg.counter("device.writes", device="NVBM")
    assert a is b
    assert len(reg) == 1


def test_labels_are_canonicalised(reg):
    a = reg.counter("x", a=1, b="y")
    b = reg.counter("x", b="y", a="1")  # order and str() must not matter
    assert a is b


def test_counter_inc_and_total(reg):
    reg.counter("device.writes", device="NVBM").inc(3)
    reg.counter("device.writes", device="DRAM").inc(2)
    assert reg.total("device.writes") == 5
    assert reg.get("device.writes", device="NVBM").value == 3
    assert reg.get("device.writes", device="missing") is None


def test_counter_rejects_negative(reg):
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_kind_collision_same_labels(reg):
    reg.counter("n", a=1)
    with pytest.raises(ValueError):
        reg.gauge("n", a=1)


def test_kind_collision_across_labelsets(reg):
    reg.counter("n", a=1)
    with pytest.raises(ValueError):
        reg.histogram("n", a=2)


def test_gauge_set_add(reg):
    g = reg.gauge("free_fraction", arena="DRAM")
    g.set(0.5)
    g.add(0.25)
    assert g.value == 0.75


def test_updates_stamped_on_sim_clock(clock, reg):
    c = reg.counter("c")
    clock.advance(1000.0)
    c.inc()
    assert c.updated_ns == 1000.0
    clock.advance(500.0)
    c.inc()
    assert c.updated_ns == 1500.0


def test_late_clock_binding():
    reg = MetricsRegistry()
    c = reg.counter("c")
    c.inc()  # no clock yet: stamp stays 0
    assert c.updated_ns == 0.0
    clk = SimClock()
    clk.advance(42.0)
    reg.bind_clock(clk)
    c.inc()
    assert c.updated_ns == 42.0


def test_histogram_buckets_and_stats(reg):
    h = reg.histogram("wear", buckets=(1.0, 4.0, 16.0))
    for v in (0.5, 2, 3, 10, 100):
        h.observe(v)
    assert h.count == 5
    assert h.bucket_counts == [1, 2, 1, 1]  # last = overflow
    assert h.min == 0.5 and h.max == 100
    assert h.mean == pytest.approx((0.5 + 2 + 3 + 10 + 100) / 5)


def test_histogram_weighted_observe(reg):
    h = reg.histogram("h", buckets=(10.0,))
    h.observe(3, n=4)
    h.observe(3, n=0)  # no-op
    assert h.count == 4
    assert h.sum == 12


def test_samples_sorted_and_jsonl_round_trip(reg):
    reg.counter("b.second", x=1).inc()
    reg.counter("a.first").inc(2)
    reg.histogram("c.hist", buckets=(1.0,)).observe(5)
    names = [s["name"] for s in reg.samples()]
    assert names == sorted(names)
    fh = io.StringIO()
    n = reg.export_jsonl(fh)
    assert n == 3
    rows = [json.loads(line) for line in fh.getvalue().splitlines()]
    assert rows[0]["name"] == "a.first"
    assert rows[0]["value"] == 2
    hist = next(r for r in rows if r["type"] == "histogram")
    assert hist["buckets"][-1]["le"] is None  # overflow bucket


def test_values_by_labelset(reg):
    reg.counter("n", rank=0).inc(1)
    reg.counter("n", rank=1).inc(2)
    vals = reg.values("n")
    assert vals[(("rank", "0"),)] == 1
    assert vals[(("rank", "1"),)] == 2
