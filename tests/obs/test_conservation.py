"""Conservation: obs counters vs the analysis tracker's independent totals.

The :class:`~repro.analysis.tracker.OrderingTracker` hooks the same arenas
through a *different* interface (the ``tracer`` callback) and keeps its own
store/flush tallies.  Running both observers over one workload and requiring
their totals to be equal is a strong cross-check: neither layer can be
silently dropping or double-counting events without the other noticing.
"""

import pytest

from repro.analysis import install_tracker, uninstall_tracker
from repro.config import PMOctreeConfig, SolverConfig
from repro.core import pm_create
from repro.obs import Observability, observe_rig
from repro.solver.simulation import DropletSimulation


@pytest.fixture
def observed_run(clock, dram_arena, nvbm_arena):
    # both observers attach BEFORE the tree exists so neither misses the
    # construction traffic (root record + initial root-slot publishes)
    obs = Observability(clock)
    observe_rig(obs, arenas=(dram_arena, nvbm_arena))
    tracker = install_tracker(dram_arena, nvbm_arena, strict=False)
    tree = pm_create(dram_arena, nvbm_arena, dim=2,
                     config=PMOctreeConfig(dram_capacity_octants=96,
                                           seed=5))
    observe_rig(obs, tree=tree)
    solver = SolverConfig(dim=2, min_level=2, max_level=4, dt=0.01)

    def persistence(sim_):
        sim_.tree.persist()
        sim_.tree.gc()

    DropletSimulation(tree, solver, clock=clock,
                      persistence=persistence).run(6)
    yield obs, tracker, dram_arena, nvbm_arena
    uninstall_tracker(dram_arena, nvbm_arena)


def test_store_totals_agree(observed_run):
    obs, tracker, dram, nvbm = observed_run
    assert tracker.counts["stores"] > 0
    assert obs.metrics.total("arena.stores") == tracker.counts["stores"]


def test_flush_totals_agree(observed_run):
    obs, tracker, dram, nvbm = observed_run
    assert tracker.counts["flushes"] > 0
    assert obs.metrics.total("arena.flush_calls") == tracker.counts["flushes"]


def test_free_totals_agree(observed_run):
    obs, tracker, dram, nvbm = observed_run
    assert obs.metrics.total("arena.frees") == tracker.counts["frees"]


def test_device_write_counter_decomposes(observed_run):
    """Raw device writes = record stores + the 8-byte root-slot publishes.

    The tracker never sees root-slot device traffic (it observes publishes
    through a separate hook), so the device-level counter must exceed the
    record-level one by exactly the publish count on the NVBM arena.
    """
    obs, tracker, dram, nvbm = observed_run
    nvbm_stores = obs.metrics.get("arena.stores", arena=nvbm.name).value
    nvbm_writes = obs.metrics.get("device.writes", device=nvbm.name).value
    assert nvbm_writes - nvbm_stores == tracker.counts["publishes"]


def test_bytes_written_match_device_stats(observed_run):
    obs, tracker, dram, nvbm = observed_run
    for arena in (dram, nvbm):
        assert obs.metrics.get("device.bytes_written",
                               device=arena.name).value \
            == arena.device.stats.bytes_written
