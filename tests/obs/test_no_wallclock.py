"""Acceptance guard: the observability layer never reads wall time.

Every timestamp in ``src/repro/obs/`` must come from the simulated clock;
a single ``time.time()`` would make bench envelopes machine-dependent.
"""

import pathlib
import re

OBS_DIR = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro" / "obs"

FORBIDDEN = re.compile(
    r"\btime\.(time|perf_counter|monotonic|process_time|time_ns"
    r"|perf_counter_ns|monotonic_ns)\b"
    r"|\bdatetime\.(now|utcnow|today)\b"
    r"|^\s*import time\b"
    r"|^\s*from time import\b"
    r"|^\s*import datetime\b"
    r"|^\s*from datetime import\b",
    re.MULTILINE,
)


def test_obs_package_exists():
    assert OBS_DIR.is_dir()
    assert (OBS_DIR / "__init__.py").is_file()


def test_no_wall_clock_reads_in_obs_sources():
    offenders = []
    for path in sorted(OBS_DIR.rglob("*.py")):
        text = path.read_text()
        for m in FORBIDDEN.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            offenders.append(f"{path.name}:{line}: {m.group(0).strip()}")
    assert not offenders, (
        "wall-clock reads in the obs layer (use the SimClock instead):\n"
        + "\n".join(offenders)
    )
