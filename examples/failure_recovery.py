#!/usr/bin/env python
"""Failure recovery, §5.6 style: kill the simulation at step 20, recover.

Runs the droplet workload on all three octree implementations, kills the
node mid-run, and compares simulated restart times — including the second
scenario where the node never returns and PM-octree recovers from a remote
replica while the out-of-core database is simply gone.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro.config import (
    DRAM_SPEC,
    NVBM_FS_SPEC,
    NVBM_SPEC,
    PFS_SPEC,
    PMOctreeConfig,
    SolverConfig,
)
from repro.baselines.etree import EtreeOctree
from repro.baselines.incore import CheckpointPolicy, InCoreOctree
from repro.core import pm_create, pm_restore
from repro.core.replication import ReplicaStore, restore_from_replica, ship_delta
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.solver.simulation import DropletSimulation
from repro.storage.block import BlockDevice
from repro.storage.filesystem import SimFileSystem

SOLVER = SolverConfig(dim=2, min_level=2, max_level=5, dt=0.01)
KILL_STEP = 20


def leaves_signature(tree):
    return {loc: tree.get_payload(loc) for loc in tree.leaves()}


def run_pm():
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 15)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 19)
    tree = pm_create(dram, nvbm, dim=2)
    replica = ReplicaStore()

    def persist(sim):
        sim.tree.persist()
        ship_delta(sim.tree, replica)

    sim = DropletSimulation(tree, SOLVER, clock=clock, persistence=persist)
    sim.run(KILL_STEP)
    before = leaves_signature(tree)

    # ---- crash: power loss on the node -----------------------------------
    dram.crash()
    nvbm.crash(np.random.default_rng(1))

    # scenario 1: same node reboots
    t0 = clock.now_ns
    tree = pm_restore(dram, nvbm, dim=2)
    t_same = (clock.now_ns - t0) * 1e-9
    assert leaves_signature(tree) == before
    print(f"PM-octree  same node : {t_same * 1e3:9.3f} ms  "
          f"({tree.num_octants()} octants back, state verified)")

    # scenario 2: node replaced; recover from the peer replica
    clock2 = SimClock()
    dram2 = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock2, 1 << 15)
    nvbm2 = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock2, 1 << 19)
    t0 = clock2.now_ns
    tree2 = restore_from_replica(replica, dram2, nvbm2, dim=2)
    t_new = (clock2.now_ns - t0) * 1e-9
    assert leaves_signature(tree2) == before
    print(f"PM-octree  new node  : {t_new * 1e3:9.3f} ms  "
          f"(replica of {replica.bytes_stored()} bytes swizzled onto the "
          "replacement node)")


def run_incore():
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 17)
    pfs = SimFileSystem(BlockDevice(PFS_SPEC, clock))
    tree = InCoreOctree(dram, dim=2)
    policy = CheckpointPolicy(pfs, interval=10)
    sim = DropletSimulation(
        tree, SOLVER, clock=clock,
        persistence=lambda s: policy.maybe_checkpoint(tree, s.step_count),
    )
    sim.run(KILL_STEP)
    dram.crash()
    t0 = clock.now_ns
    dram2 = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 17)
    tree2 = InCoreOctree.restore_from(pfs, policy.latest(), dram2)
    t = (clock.now_ns - t0) * 1e-9
    print(f"in-core    any node  : {t * 1e3:9.3f} ms  "
          f"(re-read snapshot; steps since checkpoint are lost)")


def run_etree():
    clock = SimClock()
    device = BlockDevice(NVBM_FS_SPEC, clock)
    tree = EtreeOctree(device, dim=2)
    sim = DropletSimulation(tree, SOLVER, clock=clock)
    sim.run(KILL_STEP)
    device.crash()
    t0 = clock.now_ns
    n = tree.recover_check()
    t = (clock.now_ns - t0) * 1e-9
    print(f"out-of-core same node: {t * 1e3:9.3f} ms  "
          f"({n} leaves verified; durable database)")
    print("out-of-core new node : UNRECOVERABLE (octants were on the dead "
          "node's device, no replication)")


def main() -> None:
    print(f"killing each implementation at step {KILL_STEP} "
          "and measuring simulated restart time:\n")
    run_pm()
    run_incore()
    run_etree()


if __name__ == "__main__":
    main()
