#!/usr/bin/env python
"""Memory-capacity extension: run a mesh far bigger than DRAM (§3's goal).

Configures a DRAM arena that can hold only a small fraction of the octree;
PM-octree's eviction merging and feature-directed transformation keep the
hot (interface) subtrees resident while the bulk lives in NVBM.  Compare
the NVBM write counts with the transformation on and off.

Run:  python examples/capacity_extension.py
"""

from repro.config import DRAM_SPEC, NVBM_SPEC, PMOctreeConfig, SolverConfig
from repro.core import pm_create
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import Category, SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.solver.simulation import DropletSimulation

DRAM_BUDGET = 160  # octants of C0 — a fraction of the mesh
STEPS = 25


def run(transform: bool):
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 4096)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 19)
    tree = pm_create(
        dram, nvbm, dim=2,
        config=PMOctreeConfig(dram_capacity_octants=DRAM_BUDGET),
    )
    solver = SolverConfig(dim=2, min_level=2, max_level=6, dt=0.01)
    sim = DropletSimulation(
        tree, solver, clock=clock,
        persistence=lambda s: s.tree.persist(
            transform=transform, keep_resident=True
        ),
    )
    sim.run(STEPS)
    return {
        "octants": tree.num_octants(),
        "c0": tree.c0_size(),
        "nvbm_writes": nvbm.device.stats.writes,
        "nvbm_time_ms": clock.category_ns(Category.MEM_NVBM) / 1e6,
        "total_ms": clock.now_ns / 1e6,
        "evictions": tree.stats.evictions,
        "transformations": tree.stats.transformations,
        "wear_headroom": nvbm.device.wear_headroom(),
    }


def main() -> None:
    print(f"droplet simulation with a C0 budget of {DRAM_BUDGET} octants\n")
    static = run(transform=False)
    dynamic = run(transform=True)

    print(f"mesh size: {dynamic['octants']} octants "
          f"(~{dynamic['octants'] / DRAM_BUDGET:.1f}x the DRAM budget)")
    print(f"C0 resident octants: {dynamic['c0']} "
          f"(dynamic) vs {static['c0']} (static layout)\n")

    def show(label, r):
        print(f"{label:22s} NVBM writes={r['nvbm_writes']:6d}  "
              f"NVBM time={r['nvbm_time_ms']:8.2f} ms  "
              f"total={r['total_ms']:8.2f} ms  "
              f"evictions={r['evictions']:3d}  "
              f"transformations={r['transformations']}")

    show("static layout:", static)
    show("dynamic transformation:", dynamic)
    saved = 100 * (static["nvbm_writes"] - dynamic["nvbm_writes"]) \
        / max(1, static["nvbm_writes"])
    print(f"\ndynamic transformation served {saved:.0f}% fewer writes from "
          "NVBM (extending device lifetime accordingly;")
    print(f"endurance headroom on the most-worn cell: "
          f"{dynamic['wear_headroom'] * 100:.4f}% of budget remaining)")


if __name__ == "__main__":
    main()
