#!/usr/bin/env python
"""Quickstart: the Table-1 API in five minutes.

Creates a PM-octree, meshes with it, persists a version, simulates a crash
with torn NVBM writes, and recovers — the paper's §3.4 workflow end to end.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import DRAM_SPEC, NVBM_SPEC, PMOctreeConfig
from repro.core import pm_create, pm_persistent, pm_restore
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import Category, SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree import morton
from repro.octree.balance import balance_tree, is_balanced


def main() -> None:
    # --- hardware: one node with DRAM and NVBM arenas -----------------------
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, capacity_octants=4096)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, capacity_octants=1 << 16)

    # --- pm_create: a new PM-octree -----------------------------------------
    tree = pm_create(dram, nvbm, dim=2,
                     config=PMOctreeConfig(dram_capacity_octants=4096))
    print(f"created PM-octree: {tree.num_octants()} octant(s)")

    # --- mesh: refine around a corner, keep 2:1 balance ----------------------
    loc = tree.refine(morton.ROOT_LOC)[0]
    for _ in range(3):
        loc = tree.refine(loc)[-1]
    balance_tree(tree, max_level=5)
    assert is_balanced(tree)
    print(f"meshed: {tree.num_octants()} octants, "
          f"{tree.num_leaves()} leaves, balanced={is_balanced(tree)}")

    # store a payload on a leaf (the solver fields live here)
    leaf = sorted(tree.leaves())[0]
    tree.set_payload(leaf, (0.75, 0.0, 0.0, 1.0))

    # --- pm_persistent: one atomic persist point -----------------------------
    root = pm_persistent(tree)
    print(f"persisted: root handle {root:#x}, "
          f"overlap with working version {tree.overlap_ratio():.2f}")

    # --- a new time step mutates the working version --------------------------
    tree.set_payload(leaf, (0.10, 0.0, 0.0, 2.0))
    tree.refine(sorted(tree.leaves())[-1])
    print(f"after more work: overlap dropped to {tree.overlap_ratio():.2f} "
          "(copy-on-write shares the rest)")

    # --- crash! DRAM is lost, un-flushed NVBM cache lines tear ----------------
    dram.crash()
    nvbm.crash(np.random.default_rng(42))
    print("crash injected: DRAM wiped, NVBM cache torn")

    # --- pm_restore: near-instantaneous recovery -----------------------------
    t0 = clock.now_ns
    tree = pm_restore(dram, nvbm, dim=2)
    recovery_ns = clock.now_ns - t0
    print(f"recovered {tree.num_octants()} octants in "
          f"{recovery_ns / 1e3:.1f} simulated us")
    # the persisted payload is back; the un-persisted step is gone
    assert tree.get_payload(leaf) == (0.75, 0.0, 0.0, 1.0)
    print(f"payload of {leaf:#x} restored to the persisted value")

    # garbage from the crashed step is reclaimed asynchronously
    res = tree.gc()
    print(f"GC swept {res.swept} orphaned NVBM records")

    print(f"\nsimulated time spent: {clock.now_ns / 1e6:.3f} ms "
          f"(NVBM: {clock.category_ns(Category.MEM_NVBM) / 1e6:.3f} ms, "
          f"DRAM: {clock.category_ns(Category.MEM_DRAM) / 1e6:.3f} ms)")


if __name__ == "__main__":
    main()
