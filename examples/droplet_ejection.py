#!/usr/bin/env python
"""Droplet ejection on PM-octree: the paper's driving workload (§5.1).

Simulates a liquid jet leaving a nozzle, a capillary instability growing on
it, pinch-off, and a droplet train — with the adaptive mesh persisted to
NVBM every step and an ASCII rendering of the final two-phase field.

Run:  python examples/droplet_ejection.py [steps]
"""

import sys

from repro.config import DRAM_SPEC, NVBM_SPEC, PMOctreeConfig, SolverConfig
from repro.core import pm_create
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree import morton
from repro.solver.fields import VOF, FieldView, count_droplets
from repro.solver.simulation import DropletSimulation


def render_ascii(tree, width: int = 48, height: int = 24) -> str:
    """Coarse raster of the VOF field (X liquid, . mixed, space gas)."""
    fields = FieldView(tree)
    lines = []
    for j in range(height - 1, -1, -1):
        row = []
        for i in range(width):
            x = (i + 0.5) / width
            y = (j + 0.5) / height
            loc = tree_find(tree, (x, y))
            vof = fields.get(loc, VOF)
            row.append("X" if vof > 0.5 else ("." if vof > 0.05 else " "))
        lines.append("|" + "".join(row) + "|")
    return "\n".join(lines)


def tree_find(tree, point):
    """Point location through the protocol (works for any AdaptiveTree)."""
    loc = morton.ROOT_LOC
    dim = tree.dim
    while not tree.is_leaf(loc):
        level = morton.level_of(loc, dim)
        coords = morton.coords_of(loc, dim)
        idx = 0
        for axis in range(dim):
            mid = (2 * coords[axis] + 1) / (1 << (level + 1))
            if point[axis] >= mid:
                idx |= 1 << axis
        loc = morton.child_of(loc, dim, idx)
    return loc


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 15)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 19)
    tree = pm_create(dram, nvbm, dim=2,
                     config=PMOctreeConfig(dram_capacity_octants=1 << 15))
    solver = SolverConfig(dim=2, min_level=2, max_level=6, dt=0.01)
    sim = DropletSimulation(
        tree, solver, clock=clock,
        persistence=lambda s: (s.tree.persist(), s.tree.gc()),
    )

    print(f"running {steps} steps of droplet ejection on PM-octree ...")
    for report in sim.run(steps):
        if report.step % 10 == 0 or report.droplets != (
            sim.history[-2].droplets if len(sim.history) > 1 else 0
        ):
            print(
                f"  step {report.step:3d}  t={report.t:5.2f}  "
                f"leaves={report.leaves:5d}  droplets={report.droplets}  "
                f"overlap={report.overlap_ratio:.2f}"
            )

    final = sim.history[-1]
    print(f"\nfinal state at t={final.t:.2f}: {final.droplets} liquid "
          f"bodies, {final.leaves} leaves, "
          f"{tree.memory_usage_octants()} octant records resident")
    persist_ns = (clock.phase_ns("persist.enqueue")
                  + clock.phase_ns("persist.drain"))
    print(f"simulated execution time: {clock.now_s:.3f} s "
          f"(persist: {persist_ns / 1e9:.3f} s)")
    print("\ntwo-phase field (X liquid / . interface / ' ' gas):")
    print(render_ascii(tree))
    print(f"\ndroplet count by connected components: {count_droplets(tree)}")


if __name__ == "__main__":
    main()
