#!/usr/bin/env python
"""A second AMR application on PM-octree: an expanding seismic wavefront.

The paper's future work (§6) is to exercise PM-octree with other AMR
simulations; this example runs the :mod:`repro.solver.wave` workload — a
radially expanding pulse whose hot region sweeps the whole domain — with
the C0 auto-tuner adjusting the DRAM budget as the front (and therefore the
working set) grows and then leaves the domain.

Run:  python examples/seismic_wave.py [steps]
"""

import sys

from repro.config import DRAM_SPEC, NVBM_SPEC, PMOctreeConfig
from repro.core import pm_create
from repro.core.autotune import C0AutoTuner
from repro.nvbm.arena import MemoryArena
from repro.nvbm.clock import SimClock
from repro.nvbm.pointers import ARENA_DRAM, ARENA_NVBM
from repro.octree.vtkout import tree_to_vtk
from repro.solver.wave import WaveConfig, WaveSimulation


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    clock = SimClock()
    dram = MemoryArena(ARENA_DRAM, DRAM_SPEC, clock, 1 << 14)
    nvbm = MemoryArena(ARENA_NVBM, NVBM_SPEC, clock, 1 << 19)
    tree = pm_create(dram, nvbm, dim=2,
                     config=PMOctreeConfig(dram_capacity_octants=96))
    tuner = C0AutoTuner(min_budget=64, grow_step=128)

    def persist_and_tune(sim_):
        sim_.tree.persist(keep_resident=True)
        sim_.tree.gc()
        tuner.observe(sim_.tree)

    cfg = WaveConfig(dim=2, min_level=2, max_level=6, dt=0.02, speed=0.6)
    sim = WaveSimulation(tree, cfg, clock=clock,
                         persistence=persist_and_tune)

    print(f"expanding wavefront for {steps} steps "
          f"(epicenter {cfg.epicenter}, speed {cfg.speed})\n")
    for r in sim.run(steps):
        if r.step % 5 == 0:
            budget = tuner.current_budget or 0
            print(f"  step {r.step:3d}  t={r.t:4.2f}  front r={r.front_radius:4.2f}  "
                  f"leaves={r.leaves:5d}  written={r.cells_written:5d}  "
                  f"C0 budget={budget:5d}")

    print(f"\nsimulated execution time: {clock.now_s:.4f} s")
    print(f"NVBM writes: {nvbm.device.stats.writes}, "
          f"evictions: {tree.stats.evictions}, "
          f"transformations: {tree.stats.transformations}")
    actions = [d.action for d in tuner.history]
    print(f"auto-tuner actions: grow={actions.count('grow')}, "
          f"shrink={actions.count('shrink')}, hold={actions.count('hold')}")

    out = "wavefront.vtk"
    with open(out, "w") as fh:
        fh.write(tree_to_vtk(tree, payload_slot=0, field_name="amplitude",
                             title=f"wavefront t={sim.t:.2f}"))
    print(f"wrote {out} ({tree.num_leaves()} cells) — open in ParaView")


if __name__ == "__main__":
    main()
